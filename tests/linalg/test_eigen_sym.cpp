#include "linalg/eigen_sym.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"

namespace spca {
namespace {

Matrix random_symmetric(std::size_t n, std::uint64_t seed) {
  Xoshiro256 gen(seed);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      a(i, j) = a(j, i) = standard_normal(gen);
    }
  }
  return a;
}

void expect_orthonormal(const Matrix& v, double tol) {
  const Matrix vtv = multiply(transpose(v), v);
  EXPECT_LT(max_abs_diff(vtv, Matrix::identity(v.cols())), tol);
}

TEST(EigenSym, DiagonalMatrixReturnsSortedDiagonal) {
  const Matrix a = Matrix::diagonal(Vector{2.0, 9.0, -1.0});
  const EigenSym e = eigen_symmetric(a);
  EXPECT_DOUBLE_EQ(e.values[0], 9.0);
  EXPECT_DOUBLE_EQ(e.values[1], 2.0);
  EXPECT_DOUBLE_EQ(e.values[2], -1.0);
}

TEST(EigenSym, KnownTwoByTwo) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  const Matrix a{{2.0, 1.0}, {1.0, 2.0}};
  const EigenSym e = eigen_symmetric(a);
  EXPECT_NEAR(e.values[0], 3.0, 1e-12);
  EXPECT_NEAR(e.values[1], 1.0, 1e-12);
  // Eigenvector of 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(e.vectors(0, 0)), std::sqrt(0.5), 1e-12);
}

class EigenSymRandomTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenSymRandomTest, ReconstructsInput) {
  const std::size_t n = GetParam();
  const Matrix a = random_symmetric(n, 42 + n);
  const EigenSym e = eigen_symmetric(a);
  // A = V diag(lambda) V^T
  const Matrix reconstructed =
      multiply(multiply(e.vectors, Matrix::diagonal(e.values)),
               transpose(e.vectors));
  EXPECT_LT(max_abs_diff(a, reconstructed), 1e-10 * std::max(1.0, max_abs(a)));
}

TEST_P(EigenSymRandomTest, VectorsAreOrthonormal) {
  const std::size_t n = GetParam();
  const EigenSym e = eigen_symmetric(random_symmetric(n, 100 + n));
  expect_orthonormal(e.vectors, 1e-12);
}

TEST_P(EigenSymRandomTest, ValuesAreDescending) {
  const std::size_t n = GetParam();
  const EigenSym e = eigen_symmetric(random_symmetric(n, 200 + n));
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_GE(e.values[i - 1], e.values[i]);
  }
}

TEST_P(EigenSymRandomTest, TraceEqualsEigenvalueSum) {
  const std::size_t n = GetParam();
  const Matrix a = random_symmetric(n, 300 + n);
  const EigenSym e = eigen_symmetric(a);
  double trace = 0.0, sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    trace += a(i, i);
    sum += e.values[i];
  }
  EXPECT_NEAR(trace, sum, 1e-10 * std::max(1.0, std::abs(trace)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenSymRandomTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33, 64));

TEST(EigenSym, PsdGramHasNonNegativeEigenvalues) {
  Xoshiro256 gen(7);
  Matrix b(12, 6);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 6; ++j) b(i, j) = standard_normal(gen);
  }
  const EigenSym e = eigen_symmetric(gram(b));
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_GE(e.values[i], -1e-10);
  }
}

TEST(EigenSym, ZeroMatrixHandled) {
  const EigenSym e = eigen_symmetric(Matrix(4, 4));
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(e.values[i], 0.0);
  expect_orthonormal(e.vectors, 1e-15);
}

TEST(EigenSym, RejectsNonSquare) {
  EXPECT_THROW((void)eigen_symmetric(Matrix(2, 3)), ContractViolation);
}

TEST(EigenSymWarm, MatchesColdSolverOnPerturbedMatrix) {
  // The streaming use case: decompose A, perturb slightly, warm-start from
  // A's basis — results must match the cold solver.
  const Matrix a = gram(random_symmetric(12, 55));  // PSD for clean ordering
  const EigenSym cold_a = eigen_symmetric(a);

  Matrix perturbed = a;
  Xoshiro256 gen(56);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = i; j < 12; ++j) {
      const double d = 1e-3 * standard_normal(gen);
      perturbed(i, j) += d;
      perturbed(j, i) = perturbed(i, j);
    }
  }
  const EigenSym cold = eigen_symmetric(perturbed);
  const EigenSym warm = eigen_symmetric_warm(perturbed, cold_a.vectors);
  for (std::size_t k = 0; k < 12; ++k) {
    EXPECT_NEAR(warm.values[k], cold.values[k],
                1e-9 * std::max(1.0, cold.values[0]));
  }
  // Same reconstruction (vectors can differ by sign/rotation in clusters).
  const Matrix reconstructed =
      multiply(multiply(warm.vectors, Matrix::diagonal(warm.values)),
               transpose(warm.vectors));
  EXPECT_LT(max_abs_diff(perturbed, reconstructed), 1e-9);
}

TEST(EigenSymWarm, VectorsStayOrthonormal) {
  const Matrix a = random_symmetric(9, 57);
  const EigenSym cold = eigen_symmetric(a);
  const EigenSym warm = eigen_symmetric_warm(a, cold.vectors);
  expect_orthonormal(warm.vectors, 1e-11);
}

TEST(EigenSymWarm, DuplicateEigenvaluesMatchColdSolver) {
  // Clustered spectra are the warm path's worst case: the eigenbasis inside
  // a duplicate cluster is arbitrary, so the rotated problem B = V^T A V
  // can stay far from diagonal. The answer must still match cold.
  const Matrix q = eigen_symmetric(random_symmetric(6, 71)).vectors;
  const Matrix a = multiply(
      multiply(q, Matrix::diagonal(Vector{5.0, 5.0, 5.0, 2.0, 2.0, 1.0})),
      transpose(q));
  Matrix perturbed = a;
  Xoshiro256 gen(72);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = i; j < 6; ++j) {
      perturbed(i, j) += 1e-4 * standard_normal(gen);
      perturbed(j, i) = perturbed(i, j);
    }
  }
  const Matrix warm_basis = eigen_symmetric(perturbed).vectors;
  const EigenSym cold = eigen_symmetric(a);
  const EigenSym warm = eigen_symmetric_warm(a, warm_basis);
  for (std::size_t k = 0; k < 6; ++k) {
    EXPECT_NEAR(warm.values[k], cold.values[k], 1e-10);
  }
  expect_orthonormal(warm.vectors, 1e-11);
  const Matrix reconstructed =
      multiply(multiply(warm.vectors, Matrix::diagonal(warm.values)),
               transpose(warm.vectors));
  EXPECT_LT(max_abs_diff(a, reconstructed), 1e-10);
}

TEST(EigenSymWarm, RankDeficientGramMatchesColdSolver) {
  // Rank-3 Gram matrix: half the spectrum is exactly zero, another
  // degenerate cluster the warm solve must survive.
  Xoshiro256 gen(73);
  Matrix b(8, 6);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      b(i, j) = standard_normal(gen);
      b(i, j + 3) = b(i, j);  // duplicated columns: rank 3
    }
  }
  const Matrix a = gram(b);
  Matrix nudged = a;
  for (std::size_t i = 0; i < 6; ++i) nudged(i, i) += 1e-5;
  const Matrix warm_basis = eigen_symmetric(nudged).vectors;
  const EigenSym cold = eigen_symmetric(a);
  const EigenSym warm = eigen_symmetric_warm(a, warm_basis);
  for (std::size_t k = 0; k < 6; ++k) {
    EXPECT_NEAR(warm.values[k], cold.values[k],
                1e-9 * std::max(1.0, cold.values[0]));
  }
  for (std::size_t k = 3; k < 6; ++k) {
    EXPECT_NEAR(warm.values[k], 0.0, 1e-9 * cold.values[0]);
  }
  expect_orthonormal(warm.vectors, 1e-11);
}

TEST(EigenSymWarm, ExhaustedWarmBudgetFallsBackToCold) {
  // A warm basis unrelated to the input leaves the rotated problem dense;
  // with a single-sweep budget the inner solve must give up, report the
  // fallback, and reproduce the cold answer.
  const Matrix a = gram(random_symmetric(10, 74));
  const Matrix unrelated = eigen_symmetric(random_symmetric(10, 75)).vectors;
  const EigenSym warm = eigen_symmetric_warm(a, unrelated, 64, 1);
  EXPECT_TRUE(warm.warm_fallback);
  const EigenSym cold = eigen_symmetric(a);
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_EQ(warm.values[k], cold.values[k]) << "value " << k;
  }
  EXPECT_EQ(max_abs_diff(warm.vectors, cold.vectors), 0.0);
}

TEST(EigenSymWarm, GoodBasisDoesNotFallBack) {
  const Matrix a = gram(random_symmetric(10, 76));
  const Matrix basis = eigen_symmetric(a).vectors;
  const EigenSym warm = eigen_symmetric_warm(a, basis);
  EXPECT_FALSE(warm.warm_fallback);
  EXPECT_LE(warm.sweeps, 2);
}

TEST(EigenSymWarm, RejectsWrongShapeBasis) {
  const Matrix a = random_symmetric(5, 58);
  EXPECT_THROW((void)eigen_symmetric_warm(a, Matrix(4, 4)),
               ContractViolation);
}

class EigenTopKTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenTopKTest, MatchesJacobiLeadingPairs) {
  const std::size_t k = GetParam();
  // PSD matrix with decaying spectrum (orthogonal iteration needs gaps).
  Xoshiro256 gen(59);
  Matrix b(40, 10);
  for (std::size_t i = 0; i < 40; ++i) {
    for (std::size_t j = 0; j < 10; ++j) {
      b(i, j) = standard_normal(gen) * std::pow(0.6, static_cast<double>(j));
    }
  }
  const Matrix a = gram(b);
  const EigenSym full = eigen_symmetric(a);
  const EigenSym top = eigen_top_k(a, k, 1e-12, 2000);
  ASSERT_EQ(top.values.size(), k);
  for (std::size_t j = 0; j < k; ++j) {
    EXPECT_NEAR(top.values[j], full.values[j], 1e-6 * full.values[0])
        << "pair " << j;
    // Vectors match up to sign.
    double dot_abs = 0.0;
    for (std::size_t i = 0; i < 10; ++i) {
      dot_abs += top.vectors(i, j) * full.vectors(i, j);
    }
    EXPECT_NEAR(std::abs(dot_abs), 1.0, 1e-5) << "pair " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, EigenTopKTest, ::testing::Values(1, 2, 4, 6));

TEST(EigenTopK, ZeroMatrixHandled) {
  const EigenSym top = eigen_top_k(Matrix(6, 6), 3);
  for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(top.values[j], 0.0);
}

TEST(EigenTopK, Validation) {
  const Matrix a = gram(random_symmetric(4, 60));
  EXPECT_THROW((void)eigen_top_k(a, 0), ContractViolation);
  EXPECT_THROW((void)eigen_top_k(a, 5), ContractViolation);
  EXPECT_THROW((void)eigen_top_k(Matrix(2, 3), 1), ContractViolation);
}

TEST(EigenSym, SmallRelativeEigenvaluesAccurate) {
  // Jacobi's selling point: small eigenvalues to high relative accuracy.
  const Matrix a = Matrix::diagonal(Vector{1.0, 1e-8, 1e-12});
  const EigenSym e = eigen_symmetric(a);
  EXPECT_NEAR(e.values[1] / 1e-8, 1.0, 1e-10);
  EXPECT_NEAR(e.values[2] / 1e-12, 1.0, 1e-10);
}

}  // namespace
}  // namespace spca
