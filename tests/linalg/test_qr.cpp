#include "linalg/qr.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"

namespace spca {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Xoshiro256 gen(seed);
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = standard_normal(gen);
  }
  return m;
}

class QrShapeTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(QrShapeTest, FactorsReconstructInput) {
  const auto [rows, cols] = GetParam();
  const Matrix a = random_matrix(rows, cols, rows * 3 + cols);
  const Qr f = qr(a);
  EXPECT_LT(max_abs_diff(a, multiply(f.q, f.r)), 1e-11);
}

TEST_P(QrShapeTest, QHasOrthonormalColumns) {
  const auto [rows, cols] = GetParam();
  const Qr f = qr(random_matrix(rows, cols, rows * 11 + cols));
  const Matrix qtq = multiply(transpose(f.q), f.q);
  EXPECT_LT(max_abs_diff(qtq, Matrix::identity(cols)), 1e-12);
}

TEST_P(QrShapeTest, RIsUpperTriangular) {
  const auto [rows, cols] = GetParam();
  const Qr f = qr(random_matrix(rows, cols, rows * 17 + cols));
  for (std::size_t i = 0; i < cols; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_EQ(f.r(i, j), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrShapeTest,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                                           std::pair<std::size_t, std::size_t>{4, 4},
                                           std::pair<std::size_t, std::size_t>{10, 3},
                                           std::pair<std::size_t, std::size_t>{25, 8}));

TEST(Qr, RejectsWideMatrix) {
  EXPECT_THROW((void)qr(Matrix(2, 5)), ContractViolation);
}

TEST(SolveUpperTriangular, MatchesHandSolution) {
  const Matrix r{{2.0, 1.0}, {0.0, 4.0}};
  const Vector y{8.0, 8.0};
  const Vector x = solve_upper_triangular(r, y);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
  EXPECT_NEAR(x[0], 3.0, 1e-14);
}

TEST(SolveUpperTriangular, SingularDiagonalRejected) {
  const Matrix r{{1.0, 1.0}, {0.0, 0.0}};
  EXPECT_THROW((void)solve_upper_triangular(r, Vector{1.0, 1.0}),
               NumericalError);
}

TEST(LeastSquares, RecoversExactSolution) {
  // Consistent square system.
  const Matrix a{{1.0, 2.0}, {3.0, 5.0}};
  const Vector b{5.0, 13.0};  // x = (1, 2)
  const Vector x = solve_least_squares(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LeastSquares, FitsLineThroughNoisyPoints) {
  // Overdetermined: fit y = 2x + 1 exactly from 5 exact samples.
  Matrix a(5, 2);
  Vector b(5);
  for (std::size_t i = 0; i < 5; ++i) {
    const double x = static_cast<double>(i);
    a(i, 0) = x;
    a(i, 1) = 1.0;
    b[i] = 2.0 * x + 1.0;
  }
  const Vector coeffs = solve_least_squares(a, b);
  EXPECT_NEAR(coeffs[0], 2.0, 1e-12);
  EXPECT_NEAR(coeffs[1], 1.0, 1e-12);
}

TEST(LeastSquares, ResidualIsOrthogonalToColumnSpace) {
  const Matrix a = random_matrix(12, 4, 23);
  Xoshiro256 gen(29);
  Vector b(12);
  for (std::size_t i = 0; i < 12; ++i) b[i] = standard_normal(gen);
  const Vector x = solve_least_squares(a, b);
  Vector residual = b;
  residual -= multiply(a, x);
  const Vector atr = multiply_transposed(residual, a);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(atr[j], 0.0, 1e-10);
  }
}

TEST(LeastSquares, RankDeficientRejected) {
  Matrix a(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i);
    a(i, 1) = 2.0 * static_cast<double>(i);  // dependent columns
  }
  EXPECT_THROW((void)solve_least_squares(a, Vector(4, 1.0)), NumericalError);
}

}  // namespace
}  // namespace spca
