#include "linalg/svd.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/eigen_sym.hpp"
#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"

namespace spca {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Xoshiro256 gen(seed);
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = standard_normal(gen);
  }
  return m;
}

struct Shape {
  std::size_t rows;
  std::size_t cols;
};

class SvdShapeTest : public ::testing::TestWithParam<Shape> {};

TEST_P(SvdShapeTest, ReconstructsInput) {
  const auto [rows, cols] = GetParam();
  const Matrix a = random_matrix(rows, cols, rows * 100 + cols);
  const Svd f = svd(a);
  const Matrix reconstructed = svd_reconstruct(f);
  EXPECT_LT(max_abs_diff(a, reconstructed), 1e-10);
}

TEST_P(SvdShapeTest, RightVectorsOrthonormal) {
  const auto [rows, cols] = GetParam();
  const Svd f = svd(random_matrix(rows, cols, rows * 7 + cols));
  const Matrix vtv = multiply(transpose(f.right), f.right);
  EXPECT_LT(max_abs_diff(vtv, Matrix::identity(cols)), 1e-12);
}

TEST_P(SvdShapeTest, ValuesDescendingAndNonNegative) {
  const auto [rows, cols] = GetParam();
  const Svd f = svd(random_matrix(rows, cols, rows * 13 + cols));
  for (std::size_t j = 0; j < f.values.size(); ++j) {
    EXPECT_GE(f.values[j], 0.0);
    if (j > 0) EXPECT_GE(f.values[j - 1], f.values[j]);
  }
}

TEST_P(SvdShapeTest, FrobeniusNormPreserved) {
  const auto [rows, cols] = GetParam();
  const Matrix a = random_matrix(rows, cols, rows * 31 + cols);
  const Svd f = svd(a, /*want_left=*/false);
  double sum = 0.0;
  for (std::size_t j = 0; j < f.values.size(); ++j) {
    sum += f.values[j] * f.values[j];
  }
  EXPECT_NEAR(std::sqrt(sum), frobenius_norm(a), 1e-10);
}

TEST_P(SvdShapeTest, SquaredValuesMatchGramEigenvalues) {
  const auto [rows, cols] = GetParam();
  const Matrix a = random_matrix(rows, cols, rows * 77 + cols);
  const Svd f = svd(a, /*want_left=*/false);
  const EigenSym e = eigen_symmetric(gram(a));
  for (std::size_t j = 0; j < cols; ++j) {
    EXPECT_NEAR(f.values[j] * f.values[j], std::max(e.values[j], 0.0),
                1e-8 * std::max(1.0, e.values[0]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    TallSquareWide, SvdShapeTest,
    ::testing::Values(Shape{1, 1}, Shape{5, 5}, Shape{20, 4}, Shape{50, 9},
                      Shape{4, 20},  // wide: sketch case l < m
                      Shape{10, 81}, Shape{3, 3}));

TEST(Svd, WideMatrixHasExactZeroTrailingValues) {
  // A 4 x 10 matrix has rank at most 4: values 5..10 must be zero.
  const Matrix a = random_matrix(4, 10, 5);
  const Svd f = svd(a, /*want_left=*/false);
  for (std::size_t j = 4; j < 10; ++j) {
    EXPECT_NEAR(f.values[j], 0.0, 1e-10);
  }
}

TEST(Svd, LeftVectorsOrthonormalOnNonNullColumns) {
  const Matrix a = random_matrix(8, 5, 6);
  const Svd f = svd(a);
  const Matrix utu = multiply(transpose(f.left), f.left);
  EXPECT_LT(max_abs_diff(utu, Matrix::identity(5)), 1e-12);
}

TEST(Svd, KnownDiagonalCase) {
  const Matrix a{{3.0, 0.0}, {0.0, -4.0}};  // singular values 4, 3
  const Svd f = svd(a, /*want_left=*/false);
  EXPECT_NEAR(f.values[0], 4.0, 1e-12);
  EXPECT_NEAR(f.values[1], 3.0, 1e-12);
}

TEST(Svd, RankOneMatrix) {
  // outer product u v^T has a single singular value |u||v|.
  Matrix a(6, 4);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      a(i, j) = static_cast<double>(i + 1) * static_cast<double>(j + 1);
    }
  }
  const Svd f = svd(a, /*want_left=*/false);
  const double u2 = 1 + 4 + 9 + 16 + 25 + 36;
  const double v2 = 1 + 4 + 9 + 16;
  EXPECT_NEAR(f.values[0], std::sqrt(u2 * v2), 1e-9);
  for (std::size_t j = 1; j < 4; ++j) EXPECT_NEAR(f.values[j], 0.0, 1e-9);
}

TEST(Svd, ZeroMatrixYieldsZeroValues) {
  const Svd f = svd(Matrix(5, 3));
  for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(f.values[j], 0.0);
}

TEST(Svd, SkippingLeftSideStillGivesValuesAndRight) {
  const Matrix a = random_matrix(10, 6, 8);
  const Svd with_left = svd(a, true);
  const Svd without_left = svd(a, false);
  EXPECT_TRUE(without_left.left.empty());
  for (std::size_t j = 0; j < 6; ++j) {
    EXPECT_NEAR(with_left.values[j], without_left.values[j], 1e-14);
  }
}

}  // namespace
}  // namespace spca
