#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"

namespace spca {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Xoshiro256 gen(seed);
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      m(i, j) = standard_normal(gen);
    }
  }
  return m;
}

TEST(Matrix, InitializerListLayout) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m(2, 1), 6.0);
}

TEST(Matrix, RaggedInitializerRejected) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), ContractViolation);
}

TEST(Matrix, IdentityAndDiagonal) {
  const Matrix i3 = Matrix::identity(3);
  EXPECT_EQ(i3(1, 1), 1.0);
  EXPECT_EQ(i3(0, 2), 0.0);
  const Matrix d = Matrix::diagonal(Vector{2.0, 5.0});
  EXPECT_EQ(d(1, 1), 5.0);
  EXPECT_EQ(d(0, 1), 0.0);
}

TEST(Matrix, RowColExtractionAndAssignment) {
  Matrix m(2, 3);
  m.set_row(0, Vector{1.0, 2.0, 3.0});
  m.set_col(2, Vector{7.0, 8.0});
  EXPECT_EQ(m.row(0)[1], 2.0);
  EXPECT_EQ(m(0, 2), 7.0);
  EXPECT_EQ(m.col(2)[1], 8.0);
}

TEST(Matrix, CheckedAtThrows) {
  Matrix m(2, 2);
  EXPECT_THROW((void)m.at(2, 0), ContractViolation);
  EXPECT_THROW((void)m.at(0, 2), ContractViolation);
}

TEST(Matrix, MultiplyMatchesHandComputation) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = multiply(a, b);
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyDimensionMismatchRejected) {
  const Matrix a(2, 3);
  const Matrix b(2, 2);
  EXPECT_THROW((void)multiply(a, b), ContractViolation);
}

TEST(Matrix, MatrixVectorProduct) {
  const Matrix a{{1.0, 0.0, 2.0}, {0.0, 3.0, 0.0}};
  const Vector x{1.0, 1.0, 1.0};
  const Vector y = multiply(a, x);
  EXPECT_EQ(y[0], 3.0);
  EXPECT_EQ(y[1], 3.0);
}

TEST(Matrix, VectorTransposeProductMatchesTransposedMultiply) {
  const Matrix a = random_matrix(5, 4, 1);
  Xoshiro256 gen(2);
  Vector x(5);
  for (std::size_t i = 0; i < 5; ++i) x[i] = standard_normal(gen);
  const Vector via_helper = multiply_transposed(x, a);
  const Vector via_transpose = multiply(transpose(a), x);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(via_helper[j], via_transpose[j], 1e-12);
  }
}

TEST(Matrix, TransposeInvolution) {
  const Matrix a = random_matrix(4, 6, 3);
  const Matrix att = transpose(transpose(a));
  EXPECT_EQ(max_abs_diff(a, att), 0.0);
}

TEST(Matrix, GramEqualsExplicitProduct) {
  const Matrix a = random_matrix(7, 4, 4);
  const Matrix g = gram(a);
  const Matrix explicit_g = multiply(transpose(a), a);
  EXPECT_LT(max_abs_diff(g, explicit_g), 1e-12);
}

TEST(Matrix, GramIsSymmetric) {
  const Matrix g = gram(random_matrix(10, 5, 5));
  const Matrix gt = transpose(g);
  EXPECT_EQ(max_abs_diff(g, gt), 0.0);
}

TEST(Matrix, FrobeniusNormMatchesDefinition) {
  const Matrix a{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(frobenius_norm(a), 5.0);
}

TEST(Matrix, MaxAbsFindsLargestMagnitude) {
  const Matrix a{{1.0, -9.0}, {3.0, 2.0}};
  EXPECT_EQ(max_abs(a), 9.0);
}

TEST(Matrix, AdditionSubtractionScaling) {
  const Matrix a{{1.0, 2.0}};
  const Matrix b{{10.0, 20.0}};
  EXPECT_EQ((a + b)(0, 1), 22.0);
  EXPECT_EQ((b - a)(0, 0), 9.0);
  EXPECT_EQ((a * 3.0)(0, 1), 6.0);
}

}  // namespace
}  // namespace spca
