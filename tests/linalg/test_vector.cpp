#include "linalg/vector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace spca {
namespace {

TEST(Vector, ConstructsZeroInitialized) {
  const Vector v(4);
  EXPECT_EQ(v.size(), 4u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(v[i], 0.0);
}

TEST(Vector, InitializerListAndFill) {
  const Vector a{1.0, 2.0, 3.0};
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a[2], 3.0);
  const Vector b(3, 7.5);
  EXPECT_EQ(b[0], 7.5);
}

TEST(Vector, CheckedAccessThrowsOutOfRange) {
  Vector v(2);
  EXPECT_NO_THROW((void)v.at(1));
  EXPECT_THROW((void)v.at(2), ContractViolation);
}

TEST(Vector, ArithmeticOperators) {
  const Vector a{1.0, 2.0};
  const Vector b{3.0, -1.0};
  const Vector sum = a + b;
  EXPECT_EQ(sum[0], 4.0);
  EXPECT_EQ(sum[1], 1.0);
  const Vector diff = a - b;
  EXPECT_EQ(diff[0], -2.0);
  const Vector scaled = 2.0 * a;
  EXPECT_EQ(scaled[1], 4.0);
}

TEST(Vector, MismatchedSizesThrow) {
  Vector a(2), b(3);
  EXPECT_THROW(a += b, ContractViolation);
  EXPECT_THROW((void)dot(a, b), ContractViolation);
}

TEST(Vector, DotAndNorms) {
  const Vector a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm_squared(a), 25.0);
  EXPECT_DOUBLE_EQ(norm(a), 5.0);
  const Vector b{1.0, 1.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 7.0);
}

TEST(Vector, AxpyAccumulates) {
  const Vector x{1.0, 2.0};
  Vector y{10.0, 20.0};
  axpy(0.5, x, y);
  EXPECT_DOUBLE_EQ(y[0], 10.5);
  EXPECT_DOUBLE_EQ(y[1], 21.0);
}

TEST(Vector, NormalizeMakesUnitLength) {
  Vector v{3.0, 0.0, 4.0};
  normalize(v);
  EXPECT_NEAR(norm(v), 1.0, 1e-15);
  EXPECT_NEAR(v[0], 0.6, 1e-15);
}

TEST(Vector, NormalizeRejectsZeroVector) {
  Vector v(3);
  EXPECT_THROW(normalize(v), NumericalError);
}

TEST(Vector, DivisionByZeroScalarRejected) {
  Vector v{1.0};
  EXPECT_THROW(v /= 0.0, ContractViolation);
}

TEST(Vector, SpanViewsUnderlyingStorage) {
  Vector v{1.0, 2.0, 3.0};
  auto s = v.span();
  s[1] = 9.0;
  EXPECT_EQ(v[1], 9.0);
}

}  // namespace
}  // namespace spca
