#include "linalg/rand_range.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"

namespace spca {
namespace {

/// PSD test matrix with a geometrically decaying spectrum — the regime the
/// range finder is built for.
Matrix decaying_gram(std::size_t n, std::size_t m, std::uint64_t seed) {
  Xoshiro256 gen(seed);
  Matrix b(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      b(i, j) = standard_normal(gen) * std::pow(0.6, static_cast<double>(j));
    }
  }
  return gram(b);
}

TEST(RandRange, GaussianTestMatrixIsSeedDeterministic) {
  const Matrix a = gaussian_test_matrix(7, 5, 11);
  const Matrix b = gaussian_test_matrix(7, 5, 11);
  EXPECT_EQ(max_abs_diff(a, b), 0.0);
  const Matrix c = gaussian_test_matrix(7, 5, 12);
  EXPECT_GT(max_abs_diff(a, c), 0.0);
}

TEST(RandRange, GaussianTestMatrixMomentsAreStandardNormal) {
  const Matrix a = gaussian_test_matrix(200, 50, 13);
  double sum = 0.0, sum2 = 0.0;
  const auto count = static_cast<double>(a.rows() * a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      sum += a(i, j);
      sum2 += a(i, j) * a(i, j);
    }
  }
  EXPECT_NEAR(sum / count, 0.0, 0.05);
  EXPECT_NEAR(sum2 / count, 1.0, 0.05);
}

TEST(RandRange, RangeBasisIsOrthonormal) {
  const Matrix a = decaying_gram(40, 10, 14);
  const Matrix q = rand_range_basis(a, 6, 2, 15);
  ASSERT_EQ(q.rows(), 10u);
  ASSERT_EQ(q.cols(), 6u);
  const Matrix qtq = multiply(transpose(q), q);
  EXPECT_LT(max_abs_diff(qtq, Matrix::identity(6)), 1e-10);
}

TEST(RandRange, TopKMatchesJacobiLeadingPairs) {
  const Matrix a = decaying_gram(40, 10, 16);
  const EigenSym full = eigen_symmetric(a);
  const EigenSym top = rand_eigen_top_k(a, 4, 4, 2, 17);
  ASSERT_GE(top.values.size(), 4u);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(top.values[j], full.values[j], 1e-6 * full.values[0])
        << "pair " << j;
    double dot = 0.0;
    for (std::size_t i = 0; i < 10; ++i) {
      dot += top.vectors(i, j) * full.vectors(i, j);
    }
    EXPECT_NEAR(std::abs(dot), 1.0, 1e-5) << "pair " << j;
  }
}

TEST(RandRange, TopKIsSeedDeterministic) {
  const Matrix a = decaying_gram(40, 12, 18);
  const EigenSym once = rand_eigen_top_k(a, 5, 3, 2, 19);
  const EigenSym twice = rand_eigen_top_k(a, 5, 3, 2, 19);
  for (std::size_t j = 0; j < once.values.size(); ++j) {
    EXPECT_EQ(once.values[j], twice.values[j]) << "value " << j;
  }
  EXPECT_EQ(max_abs_diff(once.vectors, twice.vectors), 0.0);
}

TEST(RandRange, SvdRowsMatchesExactSvd) {
  // A wide l x m sketch-shaped matrix with decaying row space.
  Xoshiro256 gen(20);
  Matrix z(12, 30);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 30; ++j) {
      z(i, j) = standard_normal(gen) * std::pow(0.5, static_cast<double>(i));
    }
  }
  const Svd exact = svd(z, /*want_left=*/false);
  const Svd approx = rand_svd_rows(z, 4, 4, 2, 21);
  ASSERT_GE(approx.values.size(), 4u);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(approx.values[j], exact.values[j], 1e-6 * exact.values[0])
        << "pair " << j;
    double dot = 0.0;
    for (std::size_t i = 0; i < 30; ++i) {
      dot += approx.right(i, j) * exact.right(i, j);
    }
    EXPECT_NEAR(std::abs(dot), 1.0, 1e-5) << "pair " << j;
  }
}

}  // namespace
}  // namespace spca
