#include "linalg/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"

namespace spca {
namespace {

TEST(ColumnStats, MeansMatchHandComputation) {
  const Matrix a{{1.0, 10.0}, {3.0, 30.0}};
  const Vector mean = column_means(a);
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 20.0);
}

TEST(ColumnStats, VariancesArePopulationNormalized) {
  const Matrix a{{0.0}, {2.0}};  // mean 1, squared deviations 1 + 1, /2
  const Vector var = column_variances(a);
  EXPECT_DOUBLE_EQ(var[0], 1.0);
}

TEST(ColumnStats, CenteringZeroesColumnMeans) {
  Xoshiro256 gen(1);
  Matrix a(30, 4);
  for (std::size_t i = 0; i < 30; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      a(i, j) = 100.0 + standard_normal(gen);
    }
  }
  const Vector mean = column_means(center_columns(a));
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(mean[j], 0.0, 1e-12);
  }
}

TEST(ColumnStats, CenteredGramDiagonalEqualsDeviations) {
  const Matrix a{{0.0}, {2.0}, {4.0}};  // mean 2, deviations -2,0,2
  const Matrix g = centered_gram(a);
  EXPECT_DOUBLE_EQ(g(0, 0), 8.0);
}

TEST(RunningStats, MatchesBatchComputation) {
  Xoshiro256 gen(9);
  RunningStats rs;
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    const double x = 5.0 + 2.0 * standard_normal(gen);
    values.push_back(x);
    rs.add(x);
  }
  double mean = 0.0;
  for (const double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double m2 = 0.0;
  for (const double v : values) m2 += (v - mean) * (v - mean);

  EXPECT_EQ(rs.count(), values.size());
  EXPECT_NEAR(rs.mean(), mean, 1e-10);
  EXPECT_NEAR(rs.sum_squared_deviations(), m2, 1e-7);
  EXPECT_NEAR(rs.variance_population(), m2 / 1000.0, 1e-9);
  EXPECT_NEAR(rs.variance_sample(), m2 / 999.0, 1e-9);
}

TEST(RunningStats, TracksMinMax) {
  RunningStats rs;
  rs.add(3.0);
  rs.add(-1.0);
  rs.add(7.0);
  EXPECT_EQ(rs.min(), -1.0);
  EXPECT_EQ(rs.max(), 7.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats rs;
  rs.add(4.2);
  EXPECT_EQ(rs.variance_population(), 0.0);
  EXPECT_EQ(rs.variance_sample(), 0.0);
  EXPECT_EQ(rs.mean(), 4.2);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  // Classic catastrophic-cancellation scenario: huge mean, small variance.
  RunningStats rs;
  const double offset = 1e12;
  for (int i = 0; i < 100; ++i) {
    rs.add(offset + (i % 2 == 0 ? 1.0 : -1.0));
  }
  EXPECT_NEAR(rs.variance_population(), 1.0, 1e-6);
}

}  // namespace
}  // namespace spca
