// Shared fixtures for the detector and integration tests: a small synthetic
// deployment that keeps exact-PCA runs cheap while exercising every layer.
#pragma once

#include <cstdint>

#include "synth/anomaly_injector.hpp"
#include "synth/traffic_model.hpp"
#include "traffic/topology.hpp"
#include "traffic/trace.hpp"

namespace spca::testing {

/// A 4-router diamond topology (16 OD flows) for fast detector tests.
inline Topology small_topology() {
  return Topology({"A", "B", "C", "D"},
                  {Link{0, 1, 1.0}, Link{1, 2, 1.0}, Link{2, 3, 1.0},
                   Link{3, 0, 1.0}, Link{0, 2, 1.5}});
}

/// Generates a small-trace over `topology` with mild noise so detectors
/// converge quickly; optionally sprinkles labelled anomalies in the steady
/// state region [warmup, num_intervals).
inline TraceSet small_trace(const Topology& topology,
                            std::size_t num_intervals, std::uint64_t seed,
                            std::size_t anomalies = 0,
                            std::int64_t warmup = 0) {
  TrafficModelConfig config;
  config.num_intervals = num_intervals;
  config.interval_seconds = 300.0;
  config.seed = seed;
  config.network_noise = 0.08;
  config.flow_noise = 0.10;
  config.measurement_noise = 0.03;
  TraceSet trace = generate_traffic(topology, config);
  if (anomalies > 0) {
    AnomalyInjector injector(topology, seed ^ 0xabcdef);
    (void)injector.inject_mixture(trace, anomalies, warmup,
                                  static_cast<std::int64_t>(num_intervals));
  }
  return trace;
}

/// Like `small_trace` but with a flat seasonal profile: the traffic matrix
/// is stationary, so detection thresholds are tight and spike tests are
/// well-conditioned.
inline TraceSet flat_trace(const Topology& topology,
                           std::size_t num_intervals, std::uint64_t seed) {
  TrafficModelConfig config;
  config.num_intervals = num_intervals;
  config.interval_seconds = 300.0;
  config.seed = seed;
  config.network_noise = 0.08;
  config.flow_noise = 0.10;
  config.measurement_noise = 0.03;
  config.diurnal.daily_amplitude = 0.0;
  config.diurnal.harmonic_amplitude = 0.0;
  config.diurnal.weekend_dip = 0.0;
  return generate_traffic(topology, config);
}

}  // namespace spca::testing
