#include "traffic/entropy.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"

namespace spca {
namespace {

TEST(EntropyCounter, EmptyAndSingletonHaveZeroEntropy) {
  EntropyCounter counter;
  EXPECT_EQ(counter.entropy_bits(), 0.0);
  counter.add(42, 100);
  EXPECT_EQ(counter.entropy_bits(), 0.0);
  EXPECT_EQ(counter.normalized_entropy(), 0.0);
  EXPECT_EQ(counter.distinct(), 1u);
  EXPECT_EQ(counter.total(), 100u);
}

TEST(EntropyCounter, FairCoinIsOneBit) {
  EntropyCounter counter;
  counter.add(0, 500);
  counter.add(1, 500);
  EXPECT_NEAR(counter.entropy_bits(), 1.0, 1e-12);
  EXPECT_NEAR(counter.normalized_entropy(), 1.0, 1e-12);
}

TEST(EntropyCounter, UniformOverKIsLog2K) {
  EntropyCounter counter;
  for (std::uint32_t v = 0; v < 32; ++v) counter.add(v, 10);
  EXPECT_NEAR(counter.entropy_bits(), 5.0, 1e-12);
}

TEST(EntropyCounter, SkewReducesEntropy) {
  EntropyCounter skewed;
  skewed.add(0, 900);
  skewed.add(1, 50);
  skewed.add(2, 50);
  EntropyCounter uniform;
  uniform.add(0, 333);
  uniform.add(1, 333);
  uniform.add(2, 334);
  EXPECT_LT(skewed.entropy_bits(), uniform.entropy_bits());
  EXPECT_LT(skewed.normalized_entropy(), 1.0);
}

TEST(EntropyCounter, KnownBiasedCoin) {
  // H(0.25) = 0.25*2 + 0.75*log2(4/3).
  EntropyCounter counter;
  counter.add(0, 250);
  counter.add(1, 750);
  const double expected = 0.25 * 2.0 + 0.75 * std::log2(4.0 / 3.0);
  EXPECT_NEAR(counter.entropy_bits(), expected, 1e-12);
}

TEST(EntropyCounter, ResetClearsState) {
  EntropyCounter counter;
  counter.add(1);
  counter.add(2);
  counter.reset();
  EXPECT_EQ(counter.total(), 0u);
  EXPECT_EQ(counter.distinct(), 0u);
  EXPECT_EQ(counter.entropy_bits(), 0.0);
}

TEST(EntropyCounter, ZeroWeightRejected) {
  EntropyCounter counter;
  EXPECT_THROW(counter.add(1, 0), ContractViolation);
}

TEST(EntropyAggregator, RoutesPacketsToOdFlows) {
  EntropyAggregator agg(9, EntropyAggregator::Feature::kDestinationAddress);
  Packet p;
  p.origin = 1;
  p.destination = 2;
  p.dst_addr = 7;
  agg.record(p, 3);
  p.dst_addr = 8;
  agg.record(p, 3);
  const FlowId f = od_flow_id(1, 2, 3);
  EXPECT_EQ(agg.counter(f).distinct(), 2u);
  EXPECT_EQ(agg.counter(0).distinct(), 0u);
}

TEST(EntropyAggregator, FeatureSelectsField) {
  EntropyAggregator src_agg(4, EntropyAggregator::Feature::kSourceAddress);
  Packet p;
  p.origin = 0;
  p.destination = 1;
  p.src_addr = 1;
  p.dst_addr = 99;
  src_agg.record(p, 2);
  p.src_addr = 2;
  src_agg.record(p, 2);
  const FlowId f = od_flow_id(0, 1, 2);
  EXPECT_EQ(src_agg.counter(f).distinct(), 2u);  // two sources, one dest
}

TEST(EntropyAggregator, EndIntervalFlushesAndResets) {
  EntropyAggregator agg(4, EntropyAggregator::Feature::kDestinationAddress);
  Packet p;
  p.origin = 0;
  p.destination = 1;
  const FlowId f = od_flow_id(0, 1, 2);
  p.dst_addr = 1;
  agg.record(p, 2);
  p.dst_addr = 2;
  agg.record(p, 2);
  const Vector h = agg.end_interval();
  EXPECT_NEAR(h[f], 1.0, 1e-12);
  EXPECT_EQ(agg.counter(f).total(), 0u);
  const Vector next = agg.end_interval();
  EXPECT_EQ(next[f], 0.0);
}

}  // namespace
}  // namespace spca
