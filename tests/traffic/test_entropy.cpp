#include "traffic/entropy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/contracts.hpp"
#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"

namespace spca {
namespace {

TEST(EntropyCounter, EmptyAndSingletonHaveZeroEntropy) {
  EntropyCounter counter;
  EXPECT_EQ(counter.entropy_bits(), 0.0);
  counter.add(42, 100);
  EXPECT_EQ(counter.entropy_bits(), 0.0);
  EXPECT_EQ(counter.normalized_entropy(), 0.0);
  EXPECT_EQ(counter.distinct(), 1u);
  EXPECT_EQ(counter.total(), 100u);
}

TEST(EntropyCounter, FairCoinIsOneBit) {
  EntropyCounter counter;
  counter.add(0, 500);
  counter.add(1, 500);
  EXPECT_NEAR(counter.entropy_bits(), 1.0, 1e-12);
  EXPECT_NEAR(counter.normalized_entropy(), 1.0, 1e-12);
}

TEST(EntropyCounter, UniformOverKIsLog2K) {
  EntropyCounter counter;
  for (std::uint32_t v = 0; v < 32; ++v) counter.add(v, 10);
  EXPECT_NEAR(counter.entropy_bits(), 5.0, 1e-12);
}

TEST(EntropyCounter, SkewReducesEntropy) {
  EntropyCounter skewed;
  skewed.add(0, 900);
  skewed.add(1, 50);
  skewed.add(2, 50);
  EntropyCounter uniform;
  uniform.add(0, 333);
  uniform.add(1, 333);
  uniform.add(2, 334);
  EXPECT_LT(skewed.entropy_bits(), uniform.entropy_bits());
  EXPECT_LT(skewed.normalized_entropy(), 1.0);
}

TEST(EntropyCounter, KnownBiasedCoin) {
  // H(0.25) = 0.25*2 + 0.75*log2(4/3).
  EntropyCounter counter;
  counter.add(0, 250);
  counter.add(1, 750);
  const double expected = 0.25 * 2.0 + 0.75 * std::log2(4.0 / 3.0);
  EXPECT_NEAR(counter.entropy_bits(), expected, 1e-12);
}

TEST(EntropyCounter, ResetClearsState) {
  EntropyCounter counter;
  counter.add(1);
  counter.add(2);
  counter.reset();
  EXPECT_EQ(counter.total(), 0u);
  EXPECT_EQ(counter.distinct(), 0u);
  EXPECT_EQ(counter.entropy_bits(), 0.0);
}

TEST(EntropyCounter, ZeroWeightRejected) {
  EntropyCounter counter;
  EXPECT_THROW(counter.add(1, 0), ContractViolation);
}

TEST(EntropyAggregator, RoutesPacketsToOdFlows) {
  EntropyAggregator agg(9, EntropyAggregator::Feature::kDestinationAddress);
  Packet p;
  p.origin = 1;
  p.destination = 2;
  p.dst_addr = 7;
  agg.record(p, 3);
  p.dst_addr = 8;
  agg.record(p, 3);
  const FlowId f = od_flow_id(1, 2, 3);
  EXPECT_EQ(agg.counter(f).distinct(), 2u);
  EXPECT_EQ(agg.counter(0).distinct(), 0u);
}

TEST(EntropyAggregator, FeatureSelectsField) {
  EntropyAggregator src_agg(4, EntropyAggregator::Feature::kSourceAddress);
  Packet p;
  p.origin = 0;
  p.destination = 1;
  p.src_addr = 1;
  p.dst_addr = 99;
  src_agg.record(p, 2);
  p.src_addr = 2;
  src_agg.record(p, 2);
  const FlowId f = od_flow_id(0, 1, 2);
  EXPECT_EQ(src_agg.counter(f).distinct(), 2u);  // two sources, one dest
}

// ---------------------------------------------------------------------------
// Property tests: the classic Shannon-entropy identities must hold for any
// weighting, not just the hand-picked histograms above. All randomness is
// seeded, so a failure reproduces deterministically.

TEST(EntropyProperty, PermutationInvariance) {
  // H depends on the multiset of weights only — neither the insertion order
  // nor the category labels may change it.
  Xoshiro256 gen(0x5eed5eedULL);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 2 + uniform_index(gen, 30);
    std::vector<std::uint64_t> weights(n);
    for (auto& w : weights) w = 1 + uniform_index(gen, 1000);

    EntropyCounter forward;
    for (std::size_t i = 0; i < n; ++i) {
      forward.add(static_cast<std::uint32_t>(i), weights[i]);
    }
    // Shuffled insertion order, relabeled categories.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0u);
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[uniform_index(gen, i)]);
    }
    EntropyCounter shuffled;
    for (std::size_t i = 0; i < n; ++i) {
      shuffled.add(static_cast<std::uint32_t>(1000 + i), weights[order[i]]);
    }
    EXPECT_NEAR(forward.entropy_bits(), shuffled.entropy_bits(), 1e-9);
    EXPECT_NEAR(forward.normalized_entropy(), shuffled.normalized_entropy(),
                1e-9);
  }
}

TEST(EntropyProperty, UniformMaximizesAndDegenerateMinimizes) {
  // For k categories: 0 <= H <= log2(k), the maximum exactly at the uniform
  // distribution and the minimum exactly at a point mass.
  Xoshiro256 gen(0xba5eba11ULL);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t k = 2 + uniform_index(gen, 40);
    EntropyCounter random;
    EntropyCounter uniform;
    EntropyCounter point;
    for (std::size_t v = 0; v < k; ++v) {
      random.add(static_cast<std::uint32_t>(v), 1 + uniform_index(gen, 500));
      uniform.add(static_cast<std::uint32_t>(v), 7);
    }
    point.add(0, 1 + uniform_index(gen, 500));

    const double cap = std::log2(static_cast<double>(k));
    EXPECT_GE(random.entropy_bits(), 0.0);
    EXPECT_LE(random.entropy_bits(), cap + 1e-9);
    EXPECT_NEAR(uniform.entropy_bits(), cap, 1e-9);
    EXPECT_NEAR(uniform.normalized_entropy(), 1.0, 1e-9);
    EXPECT_EQ(point.entropy_bits(), 0.0);
    EXPECT_GE(random.normalized_entropy(), 0.0);
    EXPECT_LE(random.normalized_entropy(), 1.0 + 1e-9);
  }
}

TEST(EntropyProperty, SpanAndCounterAgreeOnRandomHistograms) {
  // shannon_entropy_bits and EntropyCounter are two routes to the same
  // quantity; fuzz random histograms (including zero weights, which the
  // span form must skip) through both.
  Xoshiro256 gen(0xfeedf00dULL);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 1 + uniform_index(gen, 24);
    std::vector<double> weights(n);
    EntropyCounter counter;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t w = uniform_index(gen, 5);  // ~1/5 weights are zero
      weights[i] = static_cast<double>(w * (1 + uniform_index(gen, 100)));
      if (weights[i] > 0.0) {
        counter.add(static_cast<std::uint32_t>(i),
                    static_cast<std::uint64_t>(weights[i]));
      }
    }
    EXPECT_NEAR(shannon_entropy_bits(weights), counter.entropy_bits(), 1e-9)
        << "trial " << trial;
  }
}

TEST(EntropyProperty, FuzzDegenerateInputsRoundTrip) {
  // Edge inputs the aggregator meets in production: an empty interval, a
  // single observed flow, a single address with arbitrary multiplicity.
  // None may produce NaN/Inf or nonzero entropy, and end_interval() must
  // leave the aggregator reusable.
  EXPECT_EQ(shannon_entropy_bits({}), 0.0);
  const std::vector<double> single{42.0};
  EXPECT_EQ(shannon_entropy_bits(single), 0.0);
  const std::vector<double> zeros{0.0, 0.0, 0.0};
  EXPECT_EQ(shannon_entropy_bits(zeros), 0.0);

  Xoshiro256 gen(0x0ddba11ULL);
  for (int trial = 0; trial < 50; ++trial) {
    EntropyAggregator agg(4, EntropyAggregator::Feature::kDestinationAddress);
    const Vector empty = agg.end_interval();
    for (std::size_t f = 0; f < empty.size(); ++f) {
      EXPECT_EQ(empty[f], 0.0);
    }
    // One flow, one address, random multiplicity: still degenerate.
    Packet p;
    p.origin = 0;
    p.destination = 1;
    p.dst_addr = static_cast<std::uint32_t>(uniform_index(gen, 1u << 16));
    const auto copies = 1 + uniform_index(gen, 50);
    for (std::uint64_t c = 0; c < copies; ++c) agg.record(p, 2);
    const Vector h = agg.end_interval();
    for (std::size_t f = 0; f < h.size(); ++f) {
      EXPECT_TRUE(std::isfinite(h[f]));
      EXPECT_EQ(h[f], 0.0);
    }
    // The flush reset the histograms: a fresh interval starts from zero.
    EXPECT_EQ(agg.counter(od_flow_id(0, 1, 2)).total(), 0u);
  }
}

TEST(EntropyAggregator, EndIntervalFlushesAndResets) {
  EntropyAggregator agg(4, EntropyAggregator::Feature::kDestinationAddress);
  Packet p;
  p.origin = 0;
  p.destination = 1;
  const FlowId f = od_flow_id(0, 1, 2);
  p.dst_addr = 1;
  agg.record(p, 2);
  p.dst_addr = 2;
  agg.record(p, 2);
  const Vector h = agg.end_interval();
  EXPECT_NEAR(h[f], 1.0, 1e-12);
  EXPECT_EQ(agg.counter(f).total(), 0u);
  const Vector next = agg.end_interval();
  EXPECT_EQ(next[f], 0.0);
}

}  // namespace
}  // namespace spca
