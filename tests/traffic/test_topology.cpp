#include "traffic/topology.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace spca {
namespace {

TEST(OdFlowId, RoundTripsThroughPair) {
  const std::uint32_t routers = 9;
  for (RouterId o = 0; o < routers; ++o) {
    for (RouterId d = 0; d < routers; ++d) {
      const FlowId f = od_flow_id(o, d, routers);
      const OdPair p = od_pair_of(f, routers);
      EXPECT_EQ(p.origin, o);
      EXPECT_EQ(p.destination, d);
    }
  }
}

TEST(OdFlowId, IdsAreDenseAndUnique) {
  const std::uint32_t routers = 5;
  std::vector<bool> seen(routers * routers, false);
  for (RouterId o = 0; o < routers; ++o) {
    for (RouterId d = 0; d < routers; ++d) {
      const FlowId f = od_flow_id(o, d, routers);
      ASSERT_LT(f, seen.size());
      EXPECT_FALSE(seen[f]);
      seen[f] = true;
    }
  }
}

TEST(AbileneTopology, HasTheNineSec6Routers) {
  const Topology topo = abilene_topology();
  EXPECT_EQ(topo.num_routers(), 9u);
  EXPECT_EQ(topo.num_od_flows(), 81u);
  for (const char* name : {"ATLA", "CHIC", "HOUS", "KANS", "LOSA", "NEWY",
                           "SALT", "SEAT", "WASH"}) {
    EXPECT_NO_THROW((void)topo.router_id(name)) << name;
  }
  EXPECT_THROW((void)topo.router_id("DNVR"), InputError);
}

TEST(AbileneTopology, IsConnected) {
  const Topology topo = abilene_topology();
  // BFS from router 0 must reach every router.
  std::vector<bool> visited(topo.num_routers(), false);
  std::vector<RouterId> frontier = {0};
  visited[0] = true;
  while (!frontier.empty()) {
    const RouterId u = frontier.back();
    frontier.pop_back();
    for (const auto& e : topo.neighbors(u)) {
      if (!visited[e.neighbor]) {
        visited[e.neighbor] = true;
        frontier.push_back(e.neighbor);
      }
    }
  }
  for (std::size_t i = 0; i < visited.size(); ++i) {
    EXPECT_TRUE(visited[i]) << topo.router_name(static_cast<RouterId>(i));
  }
}

TEST(AbileneTopology, AdjacencyIsSymmetric) {
  const Topology topo = abilene_topology();
  for (RouterId u = 0; u < topo.num_routers(); ++u) {
    for (const auto& e : topo.neighbors(u)) {
      bool back_edge = false;
      for (const auto& back : topo.neighbors(e.neighbor)) {
        if (back.neighbor == u && back.link == e.link) back_edge = true;
      }
      EXPECT_TRUE(back_edge);
    }
  }
}

TEST(Abilene11Topology, MatchesTheClassicMap) {
  const Topology topo = abilene11_topology();
  EXPECT_EQ(topo.num_routers(), 11u);
  EXPECT_EQ(topo.num_od_flows(), 121u);  // Lakhina'04's m
  EXPECT_EQ(topo.num_links(), 14u);
  // Spot-check well-known circuits.
  bool found_ipls_chin = false;
  const RouterId ipls = topo.router_id("IPLS");
  for (const auto& e : topo.neighbors(ipls)) {
    if (e.neighbor == topo.router_id("CHIN")) found_ipls_chin = true;
  }
  EXPECT_TRUE(found_ipls_chin);
}

TEST(Abilene11Topology, IsConnected) {
  const Topology topo = abilene11_topology();
  std::vector<bool> visited(topo.num_routers(), false);
  std::vector<RouterId> frontier = {0};
  visited[0] = true;
  while (!frontier.empty()) {
    const RouterId u = frontier.back();
    frontier.pop_back();
    for (const auto& e : topo.neighbors(u)) {
      if (!visited[e.neighbor]) {
        visited[e.neighbor] = true;
        frontier.push_back(e.neighbor);
      }
    }
  }
  for (std::size_t i = 0; i < visited.size(); ++i) {
    EXPECT_TRUE(visited[i]) << topo.router_name(static_cast<RouterId>(i));
  }
}

TEST(Topology, FlowNamesCombineRouterNames) {
  const Topology topo = abilene_topology();
  const FlowId f = topo.flow_id("ATLA", "CHIC");
  EXPECT_EQ(topo.flow_name(f), "ATLA-CHIC");
}

TEST(Topology, RejectsMalformedLinks) {
  EXPECT_THROW(Topology({"A", "B"}, {Link{0, 0, 1.0}}), ContractViolation);
  EXPECT_THROW(Topology({"A", "B"}, {Link{0, 5, 1.0}}), ContractViolation);
  EXPECT_THROW(Topology({"A", "B"}, {Link{0, 1, -1.0}}), ContractViolation);
}

TEST(Topology, RouterNameBoundsChecked) {
  const Topology topo = abilene_topology();
  EXPECT_THROW((void)topo.router_name(99), ContractViolation);
}

}  // namespace
}  // namespace spca
