#include "traffic/link_view.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "synth/anomaly_injector.hpp"
#include "synth/traffic_model.hpp"

namespace spca {
namespace {

TEST(LinkView, LinkLoadsMatchRoutingMatrixPerInterval) {
  const Topology topo = abilene_topology();
  const Routing routing(topo);
  TrafficModelConfig config;
  config.num_intervals = 16;
  config.seed = 4;
  const TraceSet od = generate_traffic(topo, config);
  const TraceSet links = to_link_trace(od, topo, routing);

  EXPECT_EQ(links.num_intervals(), od.num_intervals());
  EXPECT_EQ(links.num_flows(), topo.num_links());
  for (std::size_t t = 0; t < od.num_intervals(); t += 5) {
    const Vector expected = routing.link_loads(od.row(t));
    for (std::size_t e = 0; e < topo.num_links(); ++e) {
      EXPECT_DOUBLE_EQ(links.volumes()(t, e), expected[e]);
    }
  }
}

TEST(LinkView, LinkNamesComeFromEndpoints) {
  const Topology topo = abilene_topology();
  const Routing routing(topo);
  TrafficModelConfig config;
  config.num_intervals = 4;
  const TraceSet links =
      to_link_trace(generate_traffic(topo, config), topo, routing);
  bool found = false;
  for (const auto& name : links.flow_names()) {
    if (name == "SEAT--SALT" || name == "SALT--SEAT") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(LinkView, ConservesTotalBytesTimesPathLength) {
  // Each flow's volume appears once per link on its path, so the link-space
  // total equals sum over flows of volume * path length.
  const Topology topo = abilene_topology();
  const Routing routing(topo);
  TrafficModelConfig config;
  config.num_intervals = 3;
  config.seed = 9;
  const TraceSet od = generate_traffic(topo, config);
  const TraceSet links = to_link_trace(od, topo, routing);
  for (std::size_t t = 0; t < 3; ++t) {
    double expected = 0.0;
    for (std::size_t j = 0; j < od.num_flows(); ++j) {
      const OdPair pair = od_pair_of(static_cast<FlowId>(j),
                                     topo.num_routers());
      expected += od.volumes()(t, j) *
                  static_cast<double>(
                      routing.path(pair.origin, pair.destination).size());
    }
    double actual = 0.0;
    for (std::size_t e = 0; e < links.num_flows(); ++e) {
      actual += links.volumes()(t, e);
    }
    EXPECT_NEAR(actual, expected, 1e-6 * expected);
  }
}

TEST(LinkView, EventsMapToTraversedLinks) {
  const Topology topo = abilene_topology();
  const Routing routing(topo);
  TrafficModelConfig config;
  config.num_intervals = 32;
  config.seed = 10;
  TraceSet od = generate_traffic(topo, config);
  AnomalyInjector injector(topo, 3);
  injector.inject_botnet(od, 10, 2, {topo.flow_id("SEAT", "SALT")}, 2.0);

  const TraceSet links = to_link_trace(od, topo, routing);
  ASSERT_EQ(links.events().size(), 1u);
  const auto& event = links.events()[0];
  EXPECT_EQ(event.kind, "botnet");
  EXPECT_EQ(event.start, 10);
  // SEAT-SALT is a direct link in the topology: exactly one link affected.
  const auto& path =
      routing.path(topo.router_id("SEAT"), topo.router_id("SALT"));
  ASSERT_EQ(event.flows.size(), path.size());
  EXPECT_EQ(event.flows[0], static_cast<std::uint32_t>(path[0]));
}

TEST(LinkView, SelfFlowsVanishInLinkSpace) {
  // o == d flows traverse no links; a trace of only self traffic maps to
  // zero link loads.
  const Topology topo = abilene_topology();
  const Routing routing(topo);
  Matrix volumes(2, topo.num_od_flows());
  for (RouterId r = 0; r < topo.num_routers(); ++r) {
    volumes(0, od_flow_id(r, r, topo.num_routers())) = 100.0;
  }
  std::vector<std::string> names;
  for (FlowId f = 0; f < topo.num_od_flows(); ++f) {
    names.push_back(topo.flow_name(f));
  }
  const TraceSet od(std::move(volumes), 300.0, names);
  const TraceSet links = to_link_trace(od, topo, routing);
  for (std::size_t e = 0; e < links.num_flows(); ++e) {
    EXPECT_EQ(links.volumes()(0, e), 0.0);
  }
}

TEST(LinkView, RejectsDimensionMismatch) {
  const Topology topo = abilene_topology();
  const Routing routing(topo);
  const TraceSet bad(Matrix(4, 5), 300.0,
                     {"a", "b", "c", "d", "e"});
  EXPECT_THROW((void)to_link_trace(bad, topo, routing), ContractViolation);
}

}  // namespace
}  // namespace spca
