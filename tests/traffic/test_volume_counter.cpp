#include "traffic/volume_counter.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace spca {
namespace {

TEST(VolumeCounter, AccumulatesPerFlow) {
  VolumeCounter counter(3);
  counter.record(0, 100);
  counter.record(0, 50);
  counter.record(2, 7);
  EXPECT_DOUBLE_EQ(counter.volume(0), 150.0);
  EXPECT_DOUBLE_EQ(counter.volume(1), 0.0);
  EXPECT_DOUBLE_EQ(counter.volume(2), 7.0);
}

TEST(VolumeCounter, EndIntervalFlushesAndResets) {
  VolumeCounter counter(2);
  counter.record(1, 10);
  const Vector x = counter.end_interval();
  EXPECT_DOUBLE_EQ(x[1], 10.0);
  EXPECT_DOUBLE_EQ(counter.volume(1), 0.0);
  EXPECT_EQ(counter.intervals_completed(), 1u);
  const Vector next = counter.end_interval();
  EXPECT_DOUBLE_EQ(next[1], 0.0);
  EXPECT_EQ(counter.intervals_completed(), 2u);
}

TEST(VolumeCounter, RecordBytesPreservesFractions) {
  VolumeCounter counter(1);
  counter.record_bytes(0, 1.25);
  counter.record_bytes(0, 2.5);
  EXPECT_DOUBLE_EQ(counter.volume(0), 3.75);
}

TEST(VolumeCounter, RecordPacketAggregatesToOdFlow) {
  VolumeCounter counter(9);  // 3x3 routers
  const Packet p{1, 2, 1500, 0};
  counter.record_packet(p, 3);
  EXPECT_DOUBLE_EQ(counter.volume(od_flow_id(1, 2, 3)), 1500.0);
}

TEST(VolumeCounter, FlowUpdateOverloadMatchesRecord) {
  VolumeCounter counter(2);
  counter.record(FlowUpdate{1, 64});
  EXPECT_DOUBLE_EQ(counter.volume(1), 64.0);
}

TEST(VolumeCounter, BoundsAndArgumentChecks) {
  VolumeCounter counter(2);
  EXPECT_THROW(counter.record(2, 1), ContractViolation);
  EXPECT_THROW(counter.record_bytes(0, -1.0), ContractViolation);
  EXPECT_THROW((void)counter.volume(5), ContractViolation);
  EXPECT_THROW(VolumeCounter(0), ContractViolation);
}

}  // namespace
}  // namespace spca
