#include "traffic/trace.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace spca {
namespace {

TraceSet make_trace() {
  Matrix volumes(4, 2);
  volumes(0, 0) = 1.5;
  volumes(1, 1) = 2.5;
  volumes(3, 0) = 9.0;
  return TraceSet(std::move(volumes), 300.0, {"A-B", "B-A"});
}

TEST(TraceSet, BasicAccessors) {
  const TraceSet trace = make_trace();
  EXPECT_EQ(trace.num_intervals(), 4u);
  EXPECT_EQ(trace.num_flows(), 2u);
  EXPECT_DOUBLE_EQ(trace.interval_seconds(), 300.0);
  EXPECT_DOUBLE_EQ(trace.row(1)[1], 2.5);
  EXPECT_EQ(trace.flow_names()[1], "B-A");
}

TEST(TraceSet, RejectsMismatchedNames) {
  EXPECT_THROW(TraceSet(Matrix(2, 3), 300.0, {"only-one"}),
               ContractViolation);
}

TEST(TraceSet, EventsDriveLabels) {
  TraceSet trace = make_trace();
  trace.add_event(AnomalyEvent{1, 2, {0}, "botnet", 3.0});
  EXPECT_FALSE(trace.is_anomalous(0));
  EXPECT_TRUE(trace.is_anomalous(1));
  EXPECT_TRUE(trace.is_anomalous(2));
  EXPECT_FALSE(trace.is_anomalous(3));
  const auto labels = trace.labels();
  EXPECT_EQ(labels, (std::vector<bool>{false, true, true, false}));
}

TEST(TraceSet, EventValidation) {
  TraceSet trace = make_trace();
  EXPECT_THROW(trace.add_event(AnomalyEvent{3, 2, {0}, "x", 1.0}),
               ContractViolation);
  EXPECT_THROW(trace.add_event(AnomalyEvent{0, 1, {}, "x", 1.0}),
               ContractViolation);
}

TEST(TraceSet, SaveLoadRoundTrip) {
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "spca_trace_test").string();
  TraceSet trace = make_trace();
  trace.add_event(AnomalyEvent{1, 2, {0, 1}, "ddos", 2.5});
  trace.save(prefix);

  const TraceSet loaded = TraceSet::load(prefix);
  EXPECT_EQ(loaded.num_intervals(), 4u);
  EXPECT_EQ(loaded.num_flows(), 2u);
  EXPECT_DOUBLE_EQ(loaded.interval_seconds(), 300.0);
  EXPECT_DOUBLE_EQ(loaded.volumes()(3, 0), 9.0);
  EXPECT_EQ(loaded.flow_names()[0], "A-B");
  ASSERT_EQ(loaded.events().size(), 1u);
  EXPECT_EQ(loaded.events()[0].kind, "ddos");
  EXPECT_EQ(loaded.events()[0].flows, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_DOUBLE_EQ(loaded.events()[0].magnitude, 2.5);

  std::filesystem::remove(prefix + "_volumes.csv");
  std::filesystem::remove(prefix + "_events.csv");
}

class TraceLoadFailureTest : public ::testing::Test {
 protected:
  std::string prefix_ = (std::filesystem::temp_directory_path() /
                         "spca_trace_corrupt")
                            .string();

  void write_files(const std::string& volumes, const std::string& events) {
    std::ofstream(prefix_ + "_volumes.csv") << volumes;
    std::ofstream(prefix_ + "_events.csv") << events;
  }

  void TearDown() override {
    std::filesystem::remove(prefix_ + "_volumes.csv");
    std::filesystem::remove(prefix_ + "_events.csv");
  }
};

TEST_F(TraceLoadFailureTest, MissingFilesRejected) {
  EXPECT_THROW((void)TraceSet::load("/nonexistent/prefix"), InputError);
}

TEST_F(TraceLoadFailureTest, WrongHeaderRejected) {
  write_files("bogus,a\n1,2\n", "start,end,kind,magnitude,flows\n");
  EXPECT_THROW((void)TraceSet::load(prefix_), InputError);
}

TEST_F(TraceLoadFailureTest, MalformedVolumeRejected) {
  write_files("interval_seconds,f0\n300,notanumber\n",
              "start,end,kind,magnitude,flows\n");
  EXPECT_THROW((void)TraceSet::load(prefix_), InputError);
}

TEST_F(TraceLoadFailureTest, MalformedEventRejected) {
  write_files("interval_seconds,f0\n300,1.5\n",
              "start,end,kind,magnitude,flows\nxx,2,ddos,1.0,0\n");
  EXPECT_THROW((void)TraceSet::load(prefix_), InputError);
}

TEST_F(TraceLoadFailureTest, EmptyVolumesRejected) {
  write_files("interval_seconds,f0\n",
              "start,end,kind,magnitude,flows\n");
  EXPECT_THROW((void)TraceSet::load(prefix_), InputError);
}

TEST(TraceSet, VolumesAreMutable) {
  TraceSet trace = make_trace();
  trace.volumes()(0, 0) = 42.0;
  EXPECT_DOUBLE_EQ(trace.row(0)[0], 42.0);
}

}  // namespace
}  // namespace spca
