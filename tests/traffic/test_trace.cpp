#include "traffic/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <random>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace spca {
namespace {

TraceSet make_trace() {
  Matrix volumes(4, 2);
  volumes(0, 0) = 1.5;
  volumes(1, 1) = 2.5;
  volumes(3, 0) = 9.0;
  return TraceSet(std::move(volumes), 300.0, {"A-B", "B-A"});
}

TEST(TraceSet, BasicAccessors) {
  const TraceSet trace = make_trace();
  EXPECT_EQ(trace.num_intervals(), 4u);
  EXPECT_EQ(trace.num_flows(), 2u);
  EXPECT_DOUBLE_EQ(trace.interval_seconds(), 300.0);
  EXPECT_DOUBLE_EQ(trace.row(1)[1], 2.5);
  EXPECT_EQ(trace.flow_names()[1], "B-A");
}

TEST(TraceSet, RejectsMismatchedNames) {
  EXPECT_THROW(TraceSet(Matrix(2, 3), 300.0, {"only-one"}),
               ContractViolation);
}

TEST(TraceSet, EventsDriveLabels) {
  TraceSet trace = make_trace();
  trace.add_event(AnomalyEvent{1, 2, {0}, "botnet", 3.0});
  EXPECT_FALSE(trace.is_anomalous(0));
  EXPECT_TRUE(trace.is_anomalous(1));
  EXPECT_TRUE(trace.is_anomalous(2));
  EXPECT_FALSE(trace.is_anomalous(3));
  const auto labels = trace.labels();
  EXPECT_EQ(labels, (std::vector<bool>{false, true, true, false}));
}

TEST(TraceSet, EventValidation) {
  TraceSet trace = make_trace();
  EXPECT_THROW(trace.add_event(AnomalyEvent{3, 2, {0}, "x", 1.0}),
               ContractViolation);
  EXPECT_THROW(trace.add_event(AnomalyEvent{0, 1, {}, "x", 1.0}),
               ContractViolation);
}

TEST(TraceSet, SaveLoadRoundTrip) {
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "spca_trace_test").string();
  TraceSet trace = make_trace();
  trace.add_event(AnomalyEvent{1, 2, {0, 1}, "ddos", 2.5});
  trace.save(prefix);

  const TraceSet loaded = TraceSet::load(prefix);
  EXPECT_EQ(loaded.num_intervals(), 4u);
  EXPECT_EQ(loaded.num_flows(), 2u);
  EXPECT_DOUBLE_EQ(loaded.interval_seconds(), 300.0);
  EXPECT_DOUBLE_EQ(loaded.volumes()(3, 0), 9.0);
  EXPECT_EQ(loaded.flow_names()[0], "A-B");
  ASSERT_EQ(loaded.events().size(), 1u);
  EXPECT_EQ(loaded.events()[0].kind, "ddos");
  EXPECT_EQ(loaded.events()[0].flows, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_DOUBLE_EQ(loaded.events()[0].magnitude, 2.5);

  std::filesystem::remove(prefix + "_volumes.csv");
  std::filesystem::remove(prefix + "_events.csv");
}

class TraceLoadFailureTest : public ::testing::Test {
 protected:
  std::string prefix_ = (std::filesystem::temp_directory_path() /
                         "spca_trace_corrupt")
                            .string();

  void write_files(const std::string& volumes, const std::string& events) {
    std::ofstream(prefix_ + "_volumes.csv") << volumes;
    std::ofstream(prefix_ + "_events.csv") << events;
  }

  void TearDown() override {
    std::filesystem::remove(prefix_ + "_volumes.csv");
    std::filesystem::remove(prefix_ + "_events.csv");
  }
};

TEST_F(TraceLoadFailureTest, MissingFilesRejected) {
  EXPECT_THROW((void)TraceSet::load("/nonexistent/prefix"), InputError);
}

TEST_F(TraceLoadFailureTest, WrongHeaderRejected) {
  write_files("bogus,a\n1,2\n", "start,end,kind,magnitude,flows\n");
  EXPECT_THROW((void)TraceSet::load(prefix_), InputError);
}

TEST_F(TraceLoadFailureTest, MalformedVolumeRejected) {
  write_files("interval_seconds,f0\n300,notanumber\n",
              "start,end,kind,magnitude,flows\n");
  EXPECT_THROW((void)TraceSet::load(prefix_), InputError);
}

TEST_F(TraceLoadFailureTest, MalformedEventRejected) {
  write_files("interval_seconds,f0\n300,1.5\n",
              "start,end,kind,magnitude,flows\nxx,2,ddos,1.0,0\n");
  EXPECT_THROW((void)TraceSet::load(prefix_), InputError);
}

TEST_F(TraceLoadFailureTest, EmptyVolumesRejected) {
  write_files("interval_seconds,f0\n",
              "start,end,kind,magnitude,flows\n");
  EXPECT_THROW((void)TraceSet::load(prefix_), InputError);
}

TEST_F(TraceLoadFailureTest, NonFiniteVolumesRejected) {
  // stod happily parses these; load must not let them into the matrix.
  for (const char* bad : {"nan", "NaN", "inf", "-inf", "INFINITY"}) {
    write_files(std::string("interval_seconds,f0\n300,") + bad + "\n",
                "start,end,kind,magnitude,flows\n");
    EXPECT_THROW((void)TraceSet::load(prefix_), InputError) << bad;
  }
}

TEST_F(TraceLoadFailureTest, BadIntervalSecondsRejected) {
  for (const char* bad : {"0", "-300", "nan", "inf", "", "12x"}) {
    write_files(std::string("interval_seconds,f0\n") + bad + ",1.5\n",
                "start,end,kind,magnitude,flows\n");
    EXPECT_THROW((void)TraceSet::load(prefix_), InputError) << bad;
  }
}

TEST_F(TraceLoadFailureTest, WrongColumnCountRejected) {
  write_files("interval_seconds,f0\n300,1.5,9\n",
              "start,end,kind,magnitude,flows\n");
  EXPECT_THROW((void)TraceSet::load(prefix_), InputError);
  write_files("interval_seconds,f0,f1\n300,1.5\n",
              "start,end,kind,magnitude,flows\n");
  EXPECT_THROW((void)TraceSet::load(prefix_), InputError);
}

TEST_F(TraceLoadFailureTest, InvalidEventsRejected) {
  const std::string volumes = "interval_seconds,f0\n300,1.5\n";
  const std::string header = "start,end,kind,magnitude,flows\n";
  for (const char* bad : {
           "3,2,ddos,1.0,0",    // inverted range
           "0,1,ddos,1.0,",     // no flows
           "0,1,ddos,1.0,5",    // flow id out of range
           "0,1,ddos,1.0,-1",   // negative flow id
           "0,1,ddos,nan,0",    // non-finite magnitude
           "0,1,ddos,1.0,0;x",  // malformed flow token
       }) {
    write_files(volumes, header + bad + "\n");
    EXPECT_THROW((void)TraceSet::load(prefix_), InputError) << bad;
  }
}

TEST_F(TraceLoadFailureTest, FuzzedGarbageNeverCrashes) {
  // Deterministic byte soup over both CSVs: load must always either succeed
  // or throw a typed Error — never crash or accept non-finite data.
  std::mt19937_64 rng(0x5eed);
  const std::string alphabet = "0123456789,.-+eEnaif\n; x";
  for (int round = 0; round < 100; ++round) {
    std::string volumes = "interval_seconds,f0\n";
    std::string events = "start,end,kind,magnitude,flows\n";
    for (std::size_t i = rng() % 60; i > 0; --i) {
      volumes.push_back(alphabet[rng() % alphabet.size()]);
    }
    for (std::size_t i = rng() % 60; i > 0; --i) {
      events.push_back(alphabet[rng() % alphabet.size()]);
    }
    write_files(volumes, events);
    try {
      const TraceSet loaded = TraceSet::load(prefix_);
      for (std::size_t t = 0; t < loaded.num_intervals(); ++t) {
        for (std::size_t j = 0; j < loaded.num_flows(); ++j) {
          ASSERT_TRUE(std::isfinite(loaded.volumes()(t, j)));
        }
      }
    } catch (const Error&) {
      // expected for almost every input
    }
  }
}

TEST(TraceSet, VolumesAreMutable) {
  TraceSet trace = make_trace();
  trace.volumes()(0, 0) = 42.0;
  EXPECT_DOUBLE_EQ(trace.row(0)[0], 42.0);
}

}  // namespace
}  // namespace spca
