#include "traffic/routing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"

namespace spca {
namespace {

Topology line_topology() {
  // A - B - C with weights 1 and 2.
  return Topology({"A", "B", "C"}, {Link{0, 1, 1.0}, Link{1, 2, 2.0}});
}

TEST(Routing, LineGraphDistances) {
  const Routing routing(line_topology());
  EXPECT_DOUBLE_EQ(routing.distance(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(routing.distance(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(routing.distance(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(routing.distance(1, 1), 0.0);
}

TEST(Routing, PathsListLinksInOrder) {
  const Routing routing(line_topology());
  const auto& path = routing.path(0, 2);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], 0u);  // link A-B
  EXPECT_EQ(path[1], 1u);  // link B-C
  EXPECT_TRUE(routing.path(1, 1).empty());
}

TEST(Routing, ShortcutPreferredWhenCheaper) {
  // Triangle where the direct edge is more expensive than the detour.
  const Topology topo({"A", "B", "C"},
                      {Link{0, 2, 10.0}, Link{0, 1, 2.0}, Link{1, 2, 3.0}});
  const Routing routing(topo);
  EXPECT_DOUBLE_EQ(routing.distance(0, 2), 5.0);
  EXPECT_EQ(routing.path(0, 2).size(), 2u);
}

TEST(Routing, RoutingMatrixMarksPathLinks) {
  const Routing routing(line_topology());
  const Matrix& a = routing.routing_matrix();
  EXPECT_EQ(a.rows(), 2u);   // links
  EXPECT_EQ(a.cols(), 9u);   // 3x3 OD pairs
  const FlowId ac = od_flow_id(0, 2, 3);
  EXPECT_EQ(a(0, ac), 1.0);
  EXPECT_EQ(a(1, ac), 1.0);
  const FlowId ab = od_flow_id(0, 1, 3);
  EXPECT_EQ(a(0, ab), 1.0);
  EXPECT_EQ(a(1, ab), 0.0);
}

TEST(Routing, LinkLoadsAggregateOdVolumes) {
  const Routing routing(line_topology());
  Vector od(9);
  od[od_flow_id(0, 2, 3)] = 5.0;  // A->C crosses both links
  od[od_flow_id(1, 2, 3)] = 7.0;  // B->C crosses link 1 only
  const Vector loads = routing.link_loads(od);
  EXPECT_DOUBLE_EQ(loads[0], 5.0);
  EXPECT_DOUBLE_EQ(loads[1], 12.0);
}

TEST(Routing, AbileneAllPairsReachableWithSaneHopCounts) {
  const Topology topo = abilene_topology();
  const Routing routing(topo);
  for (RouterId o = 0; o < topo.num_routers(); ++o) {
    for (RouterId d = 0; d < topo.num_routers(); ++d) {
      if (o == d) continue;
      EXPECT_TRUE(std::isfinite(routing.distance(o, d)));
      const auto& path = routing.path(o, d);
      EXPECT_GE(path.size(), 1u);
      EXPECT_LE(path.size(), 5u);  // small-diameter backbone
    }
  }
}

TEST(Routing, SymmetricDistancesOnUndirectedGraph) {
  const Topology topo = abilene_topology();
  const Routing routing(topo);
  for (RouterId o = 0; o < topo.num_routers(); ++o) {
    for (RouterId d = 0; d < topo.num_routers(); ++d) {
      EXPECT_DOUBLE_EQ(routing.distance(o, d), routing.distance(d, o));
    }
  }
}

TEST(Routing, BoundsChecked) {
  const Routing routing(line_topology());
  EXPECT_THROW((void)routing.distance(0, 9), ContractViolation);
  EXPECT_THROW((void)routing.link_loads(Vector(4)), ContractViolation);
}

}  // namespace
}  // namespace spca
