#include "pca/pca_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "linalg/stats.hpp"
#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"

namespace spca {
namespace {

/// Data concentrated near a rank-2 subspace of R^5 plus small noise.
Matrix low_rank_data(std::size_t n, double noise, std::uint64_t seed) {
  Xoshiro256 gen(seed);
  const Vector dir1{1.0, 1.0, 0.0, 0.0, 1.0};
  const Vector dir2{0.0, 1.0, -1.0, 1.0, 0.0};
  Matrix x(n, 5);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = 10.0 * standard_normal(gen);
    const double b = 4.0 * standard_normal(gen);
    for (std::size_t j = 0; j < 5; ++j) {
      x(i, j) = 100.0 + a * dir1[j] + b * dir2[j] +
                noise * standard_normal(gen);
    }
  }
  return x;
}

TEST(PcaModel, UnfittedStateReported) {
  const PcaModel model;
  EXPECT_FALSE(model.fitted());
}

TEST(PcaModel, FromDataCapturesDominantSubspace) {
  const Matrix x = low_rank_data(400, 0.1, 1);
  const PcaModel model = PcaModel::from_data(x);
  ASSERT_TRUE(model.fitted());
  EXPECT_EQ(model.dimensions(), 5u);
  // Two dominant singular values, three tiny ones.
  EXPECT_GT(model.singular_values()[1], 10.0 * model.singular_values()[2]);
}

TEST(PcaModel, ComponentsOrthonormal) {
  const PcaModel model = PcaModel::from_data(low_rank_data(200, 1.0, 2));
  const Matrix vtv =
      multiply(transpose(model.components()), model.components());
  EXPECT_LT(max_abs_diff(vtv, Matrix::identity(5)), 1e-12);
}

TEST(PcaModel, CenterSubtractsColumnMeans) {
  const Matrix x{{2.0, 10.0}, {4.0, 30.0}};
  const PcaModel model = PcaModel::from_data(x);
  const Vector y = model.center(Vector{3.0, 20.0});
  EXPECT_NEAR(y[0], 0.0, 1e-12);
  EXPECT_NEAR(y[1], 0.0, 1e-12);
}

TEST(PcaModel, AnomalyDistanceZeroForFullRank) {
  const PcaModel model = PcaModel::from_data(low_rank_data(100, 1.0, 3));
  Xoshiro256 gen(4);
  Vector x(5);
  for (std::size_t j = 0; j < 5; ++j) x[j] = 100.0 + standard_normal(gen);
  // Projecting onto all m components leaves no residual (up to rounding in
  // the O(100)-magnitude cancellation).
  EXPECT_NEAR(model.anomaly_distance(x, 5), 0.0, 1e-5);
}

TEST(PcaModel, AnomalyDistanceEqualsResidualNorm) {
  const Matrix x = low_rank_data(300, 0.5, 5);
  const PcaModel model = PcaModel::from_data(x);
  Xoshiro256 gen(6);
  Vector probe(5);
  for (std::size_t j = 0; j < 5; ++j) {
    probe[j] = 100.0 + 3.0 * standard_normal(gen);
  }
  const std::size_t r = 2;
  // Explicit (I - P P^T) y computation.
  const Vector y = model.center(probe);
  Vector residual = y;
  for (std::size_t j = 0; j < r; ++j) {
    double proj = 0.0;
    for (std::size_t i = 0; i < 5; ++i) {
      proj += model.components()(i, j) * y[i];
    }
    for (std::size_t i = 0; i < 5; ++i) {
      residual[i] -= proj * model.components()(i, j);
    }
  }
  EXPECT_NEAR(model.anomaly_distance(probe, r), norm(residual), 1e-9);
}

TEST(PcaModel, InPlaneVectorHasSmallDistance) {
  const Matrix x = low_rank_data(300, 0.01, 7);
  const PcaModel model = PcaModel::from_data(x);
  // A fresh sample from the same subspace.
  Vector probe(5);
  const Vector dir1{1.0, 1.0, 0.0, 0.0, 1.0};
  for (std::size_t j = 0; j < 5; ++j) probe[j] = 100.0 + 7.0 * dir1[j];
  EXPECT_LT(model.anomaly_distance(probe, 2), 0.5);
  // An off-subspace vector sticks out.
  Vector outlier = probe;
  outlier[2] += 25.0;
  outlier[3] -= 25.0;
  EXPECT_GT(model.anomaly_distance(outlier, 2), 10.0);
}

TEST(PcaModel, SplitReconstructsCenteredVector) {
  const PcaModel model = PcaModel::from_data(low_rank_data(100, 1.0, 8));
  Xoshiro256 gen(9);
  Vector probe(5);
  for (std::size_t j = 0; j < 5; ++j) {
    probe[j] = 100.0 + 2.0 * standard_normal(gen);
  }
  const auto split = model.split(probe, 2);
  Vector sum = split.normal;
  sum += split.anomaly;
  const Vector y = model.center(probe);
  for (std::size_t j = 0; j < 5; ++j) {
    EXPECT_NEAR(sum[j], y[j], 1e-10);
  }
  EXPECT_NEAR(norm(split.anomaly), model.anomaly_distance(probe, 2), 1e-10);
}

TEST(PcaModel, FromCovarianceMatchesFromData) {
  const Matrix x = low_rank_data(250, 0.8, 10);
  const PcaModel direct = PcaModel::from_data(x);
  const PcaModel via_cov = PcaModel::from_covariance(
      centered_gram(x), column_means(x), x.rows());
  for (std::size_t j = 0; j < 5; ++j) {
    EXPECT_NEAR(direct.singular_values()[j], via_cov.singular_values()[j],
                1e-6 * (1.0 + direct.singular_values()[0]));
  }
  // Distances agree for any probe (components may differ by sign).
  Xoshiro256 gen(11);
  for (int trial = 0; trial < 10; ++trial) {
    Vector probe(5);
    for (std::size_t j = 0; j < 5; ++j) {
      probe[j] = 100.0 + 5.0 * standard_normal(gen);
    }
    EXPECT_NEAR(direct.anomaly_distance(probe, 2),
                via_cov.anomaly_distance(probe, 2), 1e-6);
  }
}

TEST(PcaModel, ComponentStdUsesSampleCount) {
  const Matrix x = low_rank_data(101, 0.5, 12);
  const PcaModel model = PcaModel::from_data(x);
  EXPECT_NEAR(model.component_std(0),
              model.singular_values()[0] / std::sqrt(100.0), 1e-12);
}

TEST(PcaModel, FromSketchScalesSpectrumWithGivenN) {
  Matrix z(4, 3);
  z(0, 0) = 2.0;
  z(1, 1) = 1.0;
  const PcaModel model = PcaModel::from_sketch(z, Vector(3), 50);
  EXPECT_EQ(model.sample_count(), 50u);
  EXPECT_NEAR(model.component_std(0), 2.0 / std::sqrt(49.0), 1e-12);
}

TEST(SelectRankByEnergy, PicksSmallestSufficientRank) {
  const Vector sv{10.0, 3.0, 1.0, 0.1};
  // energies: 100, 9, 1, 0.01 -> total 110.01
  EXPECT_EQ(select_rank_by_energy(sv, 0.90), 1u);
  EXPECT_EQ(select_rank_by_energy(sv, 0.95), 2u);
  EXPECT_EQ(select_rank_by_energy(sv, 0.999999), 4u);
}

TEST(SelectRankByEnergy, ZeroSpectrumGivesZero) {
  EXPECT_EQ(select_rank_by_energy(Vector(3), 0.9), 0u);
}

TEST(SelectRankByScree, FindsElbowInTwoTierSpectrum) {
  // Two dominant components, then a flat noise floor: elbow at r = 2.
  const Vector sv{10.0, 8.0, 0.5, 0.45, 0.4};
  EXPECT_EQ(select_rank_by_scree(sv, 0.1), 2u);
}

TEST(SelectRankByScree, SingleDominantComponent) {
  const Vector sv{20.0, 1.0, 0.9, 0.8};
  EXPECT_EQ(select_rank_by_scree(sv, 0.1), 1u);
}

TEST(SelectRankByScree, FlatSpectrumReturnsOne) {
  const Vector sv{2.0, 2.0, 2.0, 2.0};
  EXPECT_EQ(select_rank_by_scree(sv, 0.1), 1u);
}

TEST(SelectRankByScree, GradualSpectrumIncludesAllSignificantDrops) {
  // Strictly geometric decay: every drop is comparable in scale, and the
  // last drop above the knee fraction defines the elbow.
  const Vector sv{8.0, 4.0, 2.0, 1.0, 0.5};
  // Eigenvalue drops: 48, 12, 3, 0.75; largest 48; knee 0.1 -> >= 4.8
  // keeps drops 1 and 2 -> elbow after index 1 (r = 2).
  EXPECT_EQ(select_rank_by_scree(sv, 0.1), 2u);
  // A looser knee keeps more components.
  EXPECT_EQ(select_rank_by_scree(sv, 0.05), 3u);
}

TEST(SelectRankByScree, LowRankDataRecovered) {
  const Matrix x = low_rank_data(300, 0.05, 21);
  const PcaModel model = PcaModel::from_data(x);
  EXPECT_EQ(select_rank_by_scree(model.singular_values(), 0.1), 2u);
}

TEST(SelectRankByScree, Validation) {
  EXPECT_THROW((void)select_rank_by_scree(Vector{1.0, 0.5}, 0.0),
               ContractViolation);
  EXPECT_EQ(select_rank_by_scree(Vector{3.0}, 0.1), 1u);
  EXPECT_EQ(select_rank_by_scree(Vector{}, 0.1), 0u);
}

TEST(SelectRankByKSigma, CleanGaussianDataKeepsAllComponents) {
  // Without outliers no projection exceeds k sigma for large-ish k.
  const Matrix x = low_rank_data(100, 1.0, 13);
  const PcaModel model = PcaModel::from_data(x);
  const Matrix y = center_columns(x);
  EXPECT_EQ(select_rank_by_ksigma(y, model, 8.0), 5u);
}

TEST(SelectRankByKSigma, OutlierTruncatesSubspace) {
  Matrix x = low_rank_data(200, 0.5, 14);
  // Implant a massive outlier along the first principal direction.
  for (std::size_t j = 0; j < 5; ++j) x(0, j) += 500.0;
  const PcaModel model = PcaModel::from_data(x);
  const Matrix y = center_columns(x);
  EXPECT_LT(select_rank_by_ksigma(y, model, 3.0), 3u);
}

TEST(PcaModel, PreconditionsEnforced) {
  EXPECT_THROW((void)PcaModel::from_data(Matrix(1, 3)), ContractViolation);
  const PcaModel model = PcaModel::from_data(low_rank_data(50, 1.0, 15));
  EXPECT_THROW((void)model.anomaly_distance(Vector(3), 1), ContractViolation);
  EXPECT_THROW((void)model.anomaly_distance(Vector(5), 6), ContractViolation);
}

}  // namespace
}  // namespace spca
