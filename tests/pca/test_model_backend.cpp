#include "pca/backend/model_backend.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "linalg/eigen_sym.hpp"
#include "obs/metrics.hpp"
#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"

namespace spca {
namespace {

/// A centered Gram matrix with a decaying spectrum, slightly rotated per
/// step — the sliding-window refit sequence the backends see in production.
Matrix drifting_gram(std::size_t m, std::uint64_t seed, double noise) {
  Xoshiro256 gen(seed);
  Matrix b(4 * m, m);
  for (std::size_t i = 0; i < b.rows(); ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      b(i, j) = standard_normal(gen) *
                std::pow(0.7, static_cast<double>(j)) *
                (1.0 + noise * standard_normal(gen));
    }
  }
  return gram(b);
}

Vector zero_means(std::size_t m) { return Vector(m); }

ModelBackendConfig config_of(ModelBackendKind kind) {
  ModelBackendConfig config;
  config.kind = kind;
  return config;
}

TEST(ModelBackend, ParseAndNameRoundTrip) {
  for (const ModelBackendKind kind :
       {ModelBackendKind::kExact, ModelBackendKind::kWarm,
        ModelBackendKind::kRsvd, ModelBackendKind::kFd}) {
    EXPECT_EQ(parse_model_backend(to_string(kind)), kind);
  }
  EXPECT_THROW((void)parse_model_backend("eigen"), InputError);
  EXPECT_THROW((void)parse_model_backend(""), InputError);
}

TEST(ModelBackend, ConfigCodecRoundTrip) {
  ModelBackendConfig config;
  config.kind = ModelBackendKind::kRsvd;
  config.drift_threshold = 0.125;
  config.warm_sweeps = 5;
  config.rank = 9;
  config.oversample = 3;
  config.power_iters = 1;
  config.fd_rows = 33;
  config.seed = 777;
  ByteWriter writer;
  write_backend_config(writer, config);
  const std::vector<std::byte> blob = std::move(writer).take();
  ByteReader reader(blob);
  const ModelBackendConfig back = read_backend_config(reader);
  EXPECT_TRUE(reader.exhausted());
  EXPECT_EQ(back.kind, config.kind);
  EXPECT_EQ(back.drift_threshold, config.drift_threshold);
  EXPECT_EQ(back.warm_sweeps, config.warm_sweeps);
  EXPECT_EQ(back.rank, config.rank);
  EXPECT_EQ(back.oversample, config.oversample);
  EXPECT_EQ(back.power_iters, config.power_iters);
  EXPECT_EQ(back.fd_rows, config.fd_rows);
  EXPECT_EQ(back.seed, config.seed);
}

TEST(ModelBackend, WarmMatchesExactSpectrumAcrossRefits) {
  const std::size_t m = 10;
  const auto exact =
      make_model_backend(config_of(ModelBackendKind::kExact), m);
  const auto warm = make_model_backend(config_of(ModelBackendKind::kWarm), m);
  for (std::uint64_t step = 0; step < 5; ++step) {
    const Matrix g = drifting_gram(m, 90 + step, 0.02);
    const PcaModel a = exact->fit_gram(g, zero_means(m), 40);
    const PcaModel b = warm->fit_gram(g, zero_means(m), 40);
    ASSERT_EQ(a.singular_values().size(), b.singular_values().size());
    for (std::size_t j = 0; j < m; ++j) {
      EXPECT_NEAR(a.singular_values()[j], b.singular_values()[j],
                  1e-9 * std::max(1.0, a.singular_values()[0]))
          << "step " << step << " value " << j;
    }
  }
}

TEST(ModelBackend, WarmDriftRestartIncrementsMetricAndStaysCorrect) {
  Counter& restarts =
      MetricsRegistry::global().counter("spca.pca.drift_restarts");
  const std::size_t m = 8;
  const auto warm = make_model_backend(config_of(ModelBackendKind::kWarm), m);
  (void)warm->fit_gram(drifting_gram(m, 95, 0.0), zero_means(m), 40);
  const std::uint64_t before = restarts.value();
  // A Gram matrix whose eigenbasis is a random rotation of the previous
  // one swings the subspace far past the drift threshold: the next refit
  // must restart cold and still be right. (Two independent drifting_gram
  // draws share near-axis-aligned eigenbases, so they would NOT drift.)
  Xoshiro256 rot_gen(4242);
  Matrix skew(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i; j < m; ++j) {
      skew(i, j) = skew(j, i) = standard_normal(rot_gen);
    }
  }
  const Matrix q = eigen_symmetric(skew).vectors;
  Vector spectrum(m);
  for (std::size_t j = 0; j < m; ++j) {
    spectrum[j] = std::pow(0.5, static_cast<double>(j)) * 100.0;
  }
  const Matrix g =
      multiply(multiply(q, Matrix::diagonal(spectrum)), transpose(q));
  const PcaModel after = warm->fit_gram(g, zero_means(m), 40);
  EXPECT_GE(restarts.value(), before + 1);
  const auto exact =
      make_model_backend(config_of(ModelBackendKind::kExact), m);
  const PcaModel reference = exact->fit_gram(g, zero_means(m), 40);
  for (std::size_t j = 0; j < m; ++j) {
    EXPECT_NEAR(after.singular_values()[j], reference.singular_values()[j],
                1e-9 * std::max(1.0, reference.singular_values()[0]));
  }
}

TEST(ModelBackend, RsvdIsDeterministicAcrossInstances) {
  const std::size_t m = 12;
  const auto one = make_model_backend(config_of(ModelBackendKind::kRsvd), m);
  const auto two = make_model_backend(config_of(ModelBackendKind::kRsvd), m);
  for (std::uint64_t step = 0; step < 3; ++step) {
    const Matrix g = drifting_gram(m, 100 + step, 0.02);
    const PcaModel a = one->fit_gram(g, zero_means(m), 40);
    const PcaModel b = two->fit_gram(g, zero_means(m), 40);
    for (std::size_t j = 0; j < m; ++j) {
      EXPECT_EQ(a.singular_values()[j], b.singular_values()[j])
          << "step " << step << " value " << j;
    }
    EXPECT_EQ(max_abs_diff(a.components(), b.components()), 0.0);
  }
}

TEST(ModelBackend, RsvdRecoversLeadingSpectrum) {
  const std::size_t m = 12;
  const Matrix g = drifting_gram(m, 110, 0.0);
  const auto rsvd = make_model_backend(config_of(ModelBackendKind::kRsvd), m);
  const auto exact =
      make_model_backend(config_of(ModelBackendKind::kExact), m);
  const PcaModel approx = rsvd->fit_gram(g, zero_means(m), 40);
  const PcaModel reference = exact->fit_gram(g, zero_means(m), 40);
  EXPECT_GT(approx.basis_cols(), 0u);
  EXPECT_LE(approx.basis_cols(), m);
  for (std::size_t j = 0; j < 6; ++j) {
    EXPECT_NEAR(approx.singular_values()[j], reference.singular_values()[j],
                1e-5 * reference.singular_values()[0])
        << "value " << j;
  }
}

TEST(ModelBackend, TruncatedBackendsConserveSpectralMass) {
  // The synthesized tail must conserve total squared mass (phi_1 of the
  // Q-statistic) relative to what the backend actually absorbed.
  const std::size_t m = 12;
  const Matrix g = drifting_gram(m, 115, 0.0);
  const auto exact =
      make_model_backend(config_of(ModelBackendKind::kExact), m);
  const auto rsvd = make_model_backend(config_of(ModelBackendKind::kRsvd), m);
  const PcaModel reference = exact->fit_gram(g, zero_means(m), 40);
  const PcaModel approx = rsvd->fit_gram(g, zero_means(m), 40);
  double exact_mass = 0.0, approx_mass = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    exact_mass += reference.singular_values()[j] *
                  reference.singular_values()[j];
    approx_mass += approx.singular_values()[j] * approx.singular_values()[j];
  }
  EXPECT_NEAR(approx_mass, exact_mass, 1e-6 * exact_mass);
}

TEST(ModelBackend, FdAbsorbsRowsAndFindsDominantDirection) {
  const std::size_t m = 6;
  ModelBackendConfig config = config_of(ModelBackendKind::kFd);
  config.fd_rows = 4;
  const auto fd = make_model_backend(config, m, /*window=*/32);
  EXPECT_TRUE(fd->wants_rows());
  Xoshiro256 gen(120);
  std::vector<double> row(m);
  for (int i = 0; i < 200; ++i) {
    const double signal = 3.0 * standard_normal(gen);
    for (std::size_t j = 0; j < m; ++j) {
      row[j] = (j == 0 ? signal : 0.0) + 0.01 * standard_normal(gen);
    }
    fd->absorb_row(row);
  }
  const PcaModel model = fd->fit_rows(Matrix(1, m), zero_means(m), 32);
  ASSERT_TRUE(model.fitted());
  // Dominant component is e0 up to sign.
  EXPECT_GT(std::abs(model.components()(0, 0)), 0.99);
  EXPECT_GT(model.singular_values()[0], model.singular_values()[1] * 5.0);
}

class BackendStateRoundTrip
    : public ::testing::TestWithParam<ModelBackendKind> {};

TEST_P(BackendStateRoundTrip, SaveRestoreContinuesBitIdentically) {
  const std::size_t m = 9;
  ModelBackendConfig config = config_of(GetParam());
  config.fd_rows = 6;
  const auto original = make_model_backend(config, m, /*window=*/20);
  std::vector<double> row(m);
  const auto step = [&](ModelBackend& backend, std::uint64_t seed) {
    if (backend.wants_rows()) {
      Xoshiro256 rows_gen(seed);
      for (int i = 0; i < 12; ++i) {
        for (std::size_t j = 0; j < m; ++j) {
          row[j] = standard_normal(rows_gen);
        }
        backend.absorb_row(row);
      }
    }
    return backend.fit_gram(drifting_gram(m, seed, 0.02), zero_means(m), 20);
  };
  (void)step(*original, 1);
  (void)step(*original, 2);

  ByteWriter writer;
  original->save_state(writer);
  const std::vector<std::byte> blob = std::move(writer).take();
  const auto restored = make_model_backend(config, m, /*window=*/20);
  ByteReader reader(blob);
  restored->restore_state(reader);
  EXPECT_TRUE(reader.exhausted());

  const PcaModel a = step(*original, 3);
  const PcaModel b = step(*restored, 3);
  for (std::size_t j = 0; j < m; ++j) {
    EXPECT_EQ(a.singular_values()[j], b.singular_values()[j]) << "value " << j;
  }
  EXPECT_EQ(max_abs_diff(a.components(), b.components()), 0.0);
  EXPECT_EQ(a.basis_cols(), b.basis_cols());
}

INSTANTIATE_TEST_SUITE_P(Kinds, BackendStateRoundTrip,
                         ::testing::Values(ModelBackendKind::kExact,
                                           ModelBackendKind::kWarm,
                                           ModelBackendKind::kRsvd,
                                           ModelBackendKind::kFd),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace spca
