#include "pca/q_statistic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"

namespace spca {
namespace {

TEST(InverseNormalCdf, MatchesKnownQuantiles) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-12);
  EXPECT_NEAR(inverse_normal_cdf(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(inverse_normal_cdf(0.99), 2.326347874040841, 1e-9);
  EXPECT_NEAR(inverse_normal_cdf(0.841344746068543), 1.0, 1e-9);
  EXPECT_NEAR(inverse_normal_cdf(0.00134989803163009), -3.0, 1e-8);
}

TEST(InverseNormalCdf, SymmetricAboutHalf) {
  for (const double p : {0.01, 0.1, 0.3, 0.45}) {
    EXPECT_NEAR(inverse_normal_cdf(p), -inverse_normal_cdf(1.0 - p), 1e-10);
  }
}

TEST(InverseNormalCdf, RoundTripsThroughErfc) {
  for (const double p : {0.001, 0.025, 0.2, 0.5, 0.9, 0.999}) {
    const double x = inverse_normal_cdf(p);
    const double cdf = 0.5 * std::erfc(-x / std::sqrt(2.0));
    EXPECT_NEAR(cdf, p, 1e-12);
  }
}

TEST(InverseNormalCdf, RejectsBoundaryProbabilities) {
  EXPECT_THROW((void)inverse_normal_cdf(0.0), ContractViolation);
  EXPECT_THROW((void)inverse_normal_cdf(1.0), ContractViolation);
}

TEST(ResidualMoments, SumsResidualSpectrumOnly) {
  const Vector sv{4.0, 2.0, 1.0};  // with n = 5: variances 4, 1, 0.25
  const ResidualMoments m = residual_moments(sv, 1, 5);
  EXPECT_DOUBLE_EQ(m.phi1, 1.0 + 0.25);
  EXPECT_DOUBLE_EQ(m.phi2, 1.0 + 0.0625);
  EXPECT_DOUBLE_EQ(m.phi3, 1.0 + 0.015625);
}

TEST(ResidualMoments, FullRankLeavesNothing) {
  const Vector sv{4.0, 2.0};
  const ResidualMoments m = residual_moments(sv, 2, 10);
  EXPECT_EQ(m.phi1, 0.0);
}

TEST(QStatistic, DegenerateSpectrumGivesZeroThreshold) {
  const Vector sv{5.0, 0.0, 0.0};
  EXPECT_EQ(q_statistic_threshold_squared(sv, 1, 100, 0.01), 0.0);
}

TEST(QStatistic, ThresholdDecreasesWithAlpha) {
  // Higher allowed false-alarm rate -> lower threshold.
  const Vector sv{10.0, 5.0, 3.0, 2.0, 1.0};
  const double strict = q_statistic_threshold_squared(sv, 2, 200, 0.001);
  const double loose = q_statistic_threshold_squared(sv, 2, 200, 0.1);
  EXPECT_GT(strict, loose);
  EXPECT_GT(loose, 0.0);
}

TEST(QStatistic, ThresholdShrinksWithLargerNormalSubspace) {
  // Moving components out of the residual can only reduce phi1 and the
  // threshold (for this strictly decreasing spectrum).
  const Vector sv{10.0, 5.0, 3.0, 2.0, 1.0};
  double prev = q_statistic_threshold_squared(sv, 1, 200, 0.01);
  for (std::size_t r = 2; r < 5; ++r) {
    const double cur = q_statistic_threshold_squared(sv, r, 200, 0.01);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(QStatistic, UnsquaredIsSqrtOfSquared) {
  const Vector sv{8.0, 4.0, 2.0, 1.0};
  const double squared = q_statistic_threshold_squared(sv, 2, 50, 0.05);
  const double plain = q_statistic_threshold(sv, 2, 50, 0.05);
  EXPECT_NEAR(plain * plain, squared, 1e-9);
}

TEST(QStatistic, CalibratedFalseAlarmRateOnGaussianResiduals) {
  // Statistical calibration check: for i.i.d. Gaussian data (no structure),
  // the SPE with the Q threshold should flag roughly alpha of samples.
  // Here the residual subspace IS the data distribution, so the SPE is a
  // chi-square-like statistic the Q approximation was designed for.
  const std::size_t n = 4000, m = 8, r = 0;
  Xoshiro256 gen(123);
  std::vector<double> residual_norm2(n);
  // Unit-variance coordinates: singular values eta_j = sqrt(n-1).
  Vector sv(m);
  for (std::size_t j = 0; j < m; ++j) {
    sv[j] = std::sqrt(static_cast<double>(n - 1));
  }
  const double alpha = 0.05;
  const double threshold2 = q_statistic_threshold_squared(sv, r, n, alpha);
  std::size_t alarms = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double norm2 = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      const double z = standard_normal(gen);
      norm2 += z * z;
    }
    if (norm2 > threshold2) ++alarms;
  }
  const double rate = static_cast<double>(alarms) / static_cast<double>(n);
  EXPECT_NEAR(rate, alpha, 0.025);
}

TEST(QStatistic, PreconditionsEnforced) {
  const Vector sv{1.0, 0.5};
  EXPECT_THROW((void)q_statistic_threshold_squared(sv, 3, 10, 0.01),
               ContractViolation);
  EXPECT_THROW((void)q_statistic_threshold_squared(sv, 1, 1, 0.01),
               ContractViolation);
  EXPECT_THROW((void)q_statistic_threshold_squared(sv, 1, 10, 0.0),
               ContractViolation);
}

}  // namespace
}  // namespace spca
