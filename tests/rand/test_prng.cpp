#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "rand/splitmix64.hpp"
#include "rand/xoshiro256.hpp"

namespace spca {
namespace {

TEST(SplitMix64, GeneratorMatchesMixFunction) {
  // The sequential generator's first output equals the standalone mixer
  // applied to the seed — both implement the same SplitMix64 step.
  for (const std::uint64_t seed : {0ULL, 1ULL, 1234567ULL, ~0ULL}) {
    SplitMix64 gen(seed);
    EXPECT_EQ(gen(), splitmix64_mix(seed));
  }
}

TEST(SplitMix64, SecondOutputAdvancesByGoldenGamma) {
  SplitMix64 gen(42);
  (void)gen();
  EXPECT_EQ(gen(), splitmix64_mix(42 + 0x9e3779b97f4a7c15ULL));
}

TEST(SplitMix64, MixIsBijectiveOnSamples) {
  // A bijection never collides; sample a dense cluster of inputs.
  std::set<std::uint64_t> outputs;
  for (std::uint64_t x = 0; x < 10000; ++x) {
    outputs.insert(splitmix64_mix(x));
  }
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(SplitMix64, DeterministicAcrossInstances) {
  SplitMix64 a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xoshiro256, DeterministicAcrossInstances) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, BitsLookBalanced) {
  // Population count over many draws should be ~32 per word.
  Xoshiro256 gen(2024);
  double total_bits = 0;
  constexpr int kDraws = 4096;
  for (int i = 0; i < kDraws; ++i) {
    total_bits += __builtin_popcountll(gen());
  }
  const double mean_bits = total_bits / kDraws;
  EXPECT_NEAR(mean_bits, 32.0, 0.5);
}

TEST(Xoshiro256, JumpProducesDisjointStream) {
  Xoshiro256 a(5);
  Xoshiro256 b(5);
  b.jump();
  std::set<std::uint64_t> first;
  for (int i = 0; i < 1000; ++i) first.insert(a());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(first.contains(b()));
  }
}

}  // namespace
}  // namespace spca
