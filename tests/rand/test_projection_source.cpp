#include "rand/projection_source.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace spca {
namespace {

class ProjectionSchemeTest : public ::testing::TestWithParam<ProjectionKind> {
 protected:
  ProjectionSource make_source(std::uint64_t seed) const {
    if (GetParam() == ProjectionKind::kVerySparse) {
      return ProjectionSource::very_sparse(seed, 4096);
    }
    return ProjectionSource(GetParam(), seed, 3.0);
  }
};

TEST_P(ProjectionSchemeTest, DeterministicAcrossInstances) {
  // The property the distributed protocol relies on: two monitors with the
  // same parameters generate identical coefficients.
  const ProjectionSource a = make_source(77);
  const ProjectionSource b = make_source(77);
  for (std::int64_t t = 0; t < 50; ++t) {
    for (std::size_t k = 0; k < 8; ++k) {
      EXPECT_EQ(a.value(t, k), b.value(t, k));
    }
  }
}

TEST_P(ProjectionSchemeTest, DifferentSeedsGiveDifferentStreams) {
  const ProjectionSource a = make_source(1);
  const ProjectionSource b = make_source(2);
  int differing = 0;
  for (std::int64_t t = 0; t < 256; ++t) {
    if (a.value(t, 0) != b.value(t, 0)) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST_P(ProjectionSchemeTest, UnitVarianceZeroMean) {
  const ProjectionSource source = make_source(2024);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double r = source.value(i, 3);
    sum += r;
    sum2 += r * r;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.05);
  EXPECT_NEAR(sum2 / kDraws, 1.0, 0.05);
}

TEST_P(ProjectionSchemeTest, RowsAreUncorrelated) {
  const ProjectionSource source = make_source(555);
  double cross = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    cross += source.value(i, 0) * source.value(i, 1);
  }
  EXPECT_NEAR(cross / kDraws, 0.0, 0.05);
}

std::string scheme_name(const ::testing::TestParamInfo<ProjectionKind>& info) {
  switch (info.param) {
    case ProjectionKind::kGaussian:
      return "Gaussian";
    case ProjectionKind::kTugOfWar:
      return "TugOfWar";
    case ProjectionKind::kSparse:
      return "Sparse";
    case ProjectionKind::kVerySparse:
      return "VerySparse";
  }
  return "Unknown";
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, ProjectionSchemeTest,
    ::testing::Values(ProjectionKind::kGaussian, ProjectionKind::kTugOfWar,
                      ProjectionKind::kSparse, ProjectionKind::kVerySparse),
    scheme_name);

TEST(ProjectionSource, TugOfWarValuesArePlusMinusOne) {
  const ProjectionSource source(ProjectionKind::kTugOfWar, 9);
  for (std::int64_t t = 0; t < 1000; ++t) {
    const double r = source.value(t, 0);
    EXPECT_TRUE(r == 1.0 || r == -1.0);
  }
}

TEST(ProjectionSource, SparseValuesAreZeroOrPlusMinusSqrtS) {
  const double s = 3.0;
  const ProjectionSource source(ProjectionKind::kSparse, 10, s);
  int zeros = 0;
  constexpr int kDraws = 30000;
  const double root_s = std::sqrt(s);
  for (std::int64_t t = 0; t < kDraws; ++t) {
    const double r = source.value(t, 0);
    if (r == 0.0) {
      ++zeros;
    } else {
      EXPECT_NEAR(std::abs(r), root_s, 1e-12);
    }
  }
  // P(zero) = 1 - 1/s = 2/3.
  EXPECT_NEAR(static_cast<double>(zeros) / kDraws, 2.0 / 3.0, 0.02);
}

TEST(ProjectionSource, VerySparseUsesSqrtNSparsity) {
  const auto source = ProjectionSource::very_sparse(3, 10000);
  EXPECT_DOUBLE_EQ(source.sparsity(), 100.0);
  // P(nonzero) = 1/s = 1%.
  int nonzero = 0;
  constexpr int kDraws = 100000;
  for (std::int64_t t = 0; t < kDraws; ++t) {
    if (source.value(t, 0) != 0.0) ++nonzero;
  }
  EXPECT_NEAR(static_cast<double>(nonzero) / kDraws, 0.01, 0.003);
}

TEST(ProjectionKindNames, RoundTripThroughStrings) {
  for (const auto kind :
       {ProjectionKind::kGaussian, ProjectionKind::kTugOfWar,
        ProjectionKind::kSparse, ProjectionKind::kVerySparse}) {
    EXPECT_EQ(projection_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW((void)projection_kind_from_string("bogus"), InputError);
}

}  // namespace
}  // namespace spca
