#include "rand/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rand/xoshiro256.hpp"

namespace spca {
namespace {

TEST(BitsToDouble, UnitRangeIsHalfOpen) {
  EXPECT_DOUBLE_EQ(bits_to_unit_double(0), 0.0);
  EXPECT_LT(bits_to_unit_double(~0ULL), 1.0);
  EXPECT_GT(bits_to_unit_double(~0ULL), 0.999999999);
}

TEST(BitsToDouble, OpenRangeExcludesZero) {
  EXPECT_GT(bits_to_open_unit_double(0), 0.0);
  EXPECT_LE(bits_to_open_unit_double(~0ULL), 1.0);
}

TEST(UniformReal, StaysInRangeAndCoversIt) {
  Xoshiro256 gen(3);
  double lo_seen = 1e9, hi_seen = -1e9;
  for (int i = 0; i < 20000; ++i) {
    const double u = uniform_real(gen, -2.0, 5.0);
    ASSERT_GE(u, -2.0);
    ASSERT_LT(u, 5.0);
    lo_seen = std::min(lo_seen, u);
    hi_seen = std::max(hi_seen, u);
  }
  EXPECT_LT(lo_seen, -1.9);
  EXPECT_GT(hi_seen, 4.9);
}

TEST(UniformIndex, ExactRangeAndRoughUniformity) {
  Xoshiro256 gen(17);
  std::vector<int> histogram(7, 0);
  constexpr int kDraws = 70000;
  for (int i = 0; i < kDraws; ++i) {
    const auto idx = uniform_index(gen, 7);
    ASSERT_LT(idx, 7u);
    ++histogram[idx];
  }
  for (const int count : histogram) {
    EXPECT_NEAR(count, kDraws / 7, 500);
  }
}

TEST(StandardNormal, MomentsMatch) {
  Xoshiro256 gen(11);
  double sum = 0.0, sum2 = 0.0, sum4 = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double z = standard_normal(gen);
    sum += z;
    sum2 += z * z;
    sum4 += z * z * z * z;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kDraws, 1.0, 0.03);
  EXPECT_NEAR(sum4 / kDraws, 3.0, 0.15);  // normal kurtosis
}

TEST(Lognormal, MeanMatchesClosedForm) {
  Xoshiro256 gen(23);
  const double mu = 0.3, sigma = 0.4;
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    sum += lognormal(gen, mu, sigma);
  }
  const double expected = std::exp(mu + sigma * sigma / 2.0);
  EXPECT_NEAR(sum / kDraws, expected, 0.02);
}

TEST(Exponential, MeanIsOneOverLambda) {
  Xoshiro256 gen(29);
  const double lambda = 2.5;
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = exponential(gen, lambda);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, 1.0 / lambda, 0.01);
}

TEST(Pareto, RespectsScaleAndMedian) {
  Xoshiro256 gen(31);
  const double xm = 2.0, alpha = 3.0;
  int above_median = 0;
  constexpr int kDraws = 100000;
  const double median = xm * std::pow(2.0, 1.0 / alpha);
  for (int i = 0; i < kDraws; ++i) {
    const double x = pareto(gen, xm, alpha);
    ASSERT_GE(x, xm);
    if (x > median) ++above_median;
  }
  EXPECT_NEAR(static_cast<double>(above_median) / kDraws, 0.5, 0.01);
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, MeanAndVarianceMatchLambda) {
  const double lambda = GetParam();
  Xoshiro256 gen(37);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = static_cast<double>(poisson(gen, lambda));
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sum2 / kDraws - mean * mean;
  EXPECT_NEAR(mean, lambda, 0.05 * lambda + 0.05);
  EXPECT_NEAR(var, lambda, 0.10 * lambda + 0.1);
}

INSTANTIATE_TEST_SUITE_P(SmallAndLargeMeans, PoissonMeanTest,
                         ::testing::Values(0.5, 2.0, 10.0, 50.0, 200.0));

TEST(Poisson, ZeroAndNegativeLambdaYieldZero) {
  Xoshiro256 gen(41);
  EXPECT_EQ(poisson(gen, 0.0), 0u);
  EXPECT_EQ(poisson(gen, -1.0), 0u);
}

TEST(BoxMuller, ExtremeUniformsStayFinite) {
  EXPECT_TRUE(std::isfinite(box_muller(1e-300, 0.25)));
  EXPECT_TRUE(std::isfinite(box_muller(1.0, 0.0)));
}

}  // namespace
}  // namespace spca
