#include "rand/zipf.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/contracts.hpp"
#include "rand/xoshiro256.hpp"

namespace spca {
namespace {

TEST(ZipfSampler, ProbabilitiesSumToOne) {
  const ZipfSampler zipf(100, 1.2);
  double total = 0.0;
  for (std::size_t k = 0; k < zipf.size(); ++k) {
    total += zipf.probability(k);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfSampler, RankOneIsMostPopularWithPowerLawRatio) {
  const ZipfSampler zipf(50, 1.0);
  EXPECT_GT(zipf.probability(0), zipf.probability(1));
  // P(0)/P(9) = 10^s = 10 for s = 1.
  EXPECT_NEAR(zipf.probability(0) / zipf.probability(9), 10.0, 1e-9);
}

TEST(ZipfSampler, ZeroExponentIsUniform) {
  const ZipfSampler zipf(8, 0.0);
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_NEAR(zipf.probability(k), 1.0 / 8.0, 1e-12);
  }
}

TEST(ZipfSampler, EmpiricalFrequenciesMatch) {
  const ZipfSampler zipf(16, 1.0);
  Xoshiro256 gen(7);
  std::vector<int> histogram(16, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const std::size_t k = zipf(gen);
    ASSERT_LT(k, 16u);
    ++histogram[k];
  }
  for (std::size_t k = 0; k < 16; ++k) {
    const double freq = static_cast<double>(histogram[k]) / kDraws;
    EXPECT_NEAR(freq, zipf.probability(k), 0.005) << "rank " << k;
  }
}

TEST(ZipfSampler, UnitTransformEdges) {
  const ZipfSampler zipf(4, 1.0);
  EXPECT_EQ(zipf.sample_from_unit(0.0), 0u);
  EXPECT_LT(zipf.sample_from_unit(0.999999999), 4u);
  EXPECT_THROW((void)zipf.sample_from_unit(1.0), ContractViolation);
}

TEST(ZipfSampler, Validation) {
  EXPECT_THROW(ZipfSampler(0, 1.0), ContractViolation);
  EXPECT_THROW(ZipfSampler(4, -0.5), ContractViolation);
  EXPECT_NO_THROW(ZipfSampler(1, 2.0));
}

}  // namespace
}  // namespace spca
