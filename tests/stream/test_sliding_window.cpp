#include "stream/sliding_window.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace spca {
namespace {

TEST(SlidingWindowStats, EvictsOldestWhenFull) {
  SlidingWindowStats w(3);
  for (const double x : {1.0, 2.0, 3.0, 4.0}) w.add(x);
  EXPECT_EQ(w.count(), 3u);
  EXPECT_TRUE(w.full());
  EXPECT_DOUBLE_EQ(w.values().front(), 2.0);
  EXPECT_DOUBLE_EQ(w.mean(), 3.0);
}

TEST(SlidingWindowStats, VarianceMatchesDefinition) {
  SlidingWindowStats w(4);
  for (const double x : {2.0, 4.0, 4.0, 6.0}) w.add(x);
  // mean 4, squared deviations 4 + 0 + 0 + 4 = 8.
  EXPECT_DOUBLE_EQ(w.sum_squared_deviations(), 8.0);
}

TEST(SlidingWindowStats, QueriesOnEmptyRejected) {
  SlidingWindowStats w(4);
  EXPECT_THROW((void)w.mean(), ContractViolation);
  EXPECT_THROW((void)w.sum_squared_deviations(), ContractViolation);
}

TEST(SlidingWindowMatrix, MaterializesChronologicalMatrix) {
  SlidingWindowMatrix w(2, 3);
  w.add_row(Vector{1.0, 2.0, 3.0});
  w.add_row(Vector{4.0, 5.0, 6.0});
  w.add_row(Vector{7.0, 8.0, 9.0});  // evicts the first row
  const Matrix m = w.to_matrix();
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 9.0);
}

TEST(SlidingWindowMatrix, ColumnMeansOverWindowOnly) {
  SlidingWindowMatrix w(2, 2);
  w.add_row(Vector{100.0, 0.0});
  w.add_row(Vector{2.0, 4.0});
  w.add_row(Vector{4.0, 8.0});
  const Vector mean = w.column_means();
  EXPECT_DOUBLE_EQ(mean[0], 3.0);
  EXPECT_DOUBLE_EQ(mean[1], 6.0);
}

TEST(SlidingWindowMatrix, RejectsWrongDimensionRow) {
  SlidingWindowMatrix w(4, 3);
  EXPECT_THROW(w.add_row(Vector{1.0, 2.0}), ContractViolation);
}

}  // namespace
}  // namespace spca
