#include "stream/exponential_histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <deque>

#include "common/contracts.hpp"
#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"

namespace spca {
namespace {

TEST(ExponentialHistogram, EmptyEstimatesZero) {
  ExponentialHistogram eh(100, 0.1);
  EXPECT_EQ(eh.estimate(), 0.0);
  EXPECT_EQ(eh.bucket_count(), 0u);
}

TEST(ExponentialHistogram, ExactWhileBucketsAreSingletons) {
  ExponentialHistogram eh(1000, 0.5);
  for (int t = 0; t < 3; ++t) eh.add(t);
  // With 3 events and allowance >= 3 per size, the estimate counts all but
  // half of the oldest singleton: 3 - 0.5.
  EXPECT_DOUBLE_EQ(eh.estimate(), 2.5);
  EXPECT_EQ(eh.upper_bound(), 3u);
}

TEST(ExponentialHistogram, ExpiresOldEvents) {
  ExponentialHistogram eh(10, 0.1);
  eh.add(0);
  eh.add(5);
  eh.advance(20);
  EXPECT_EQ(eh.upper_bound(), 0u);
  EXPECT_EQ(eh.estimate(), 0.0);
}

TEST(ExponentialHistogram, RejectsTimeGoingBackwards) {
  ExponentialHistogram eh(10, 0.1);
  eh.add(5);
  EXPECT_THROW(eh.add(4), ContractViolation);
}

TEST(ExponentialHistogram, RejectsBadParameters) {
  EXPECT_THROW(ExponentialHistogram(0, 0.1), ContractViolation);
  EXPECT_THROW(ExponentialHistogram(10, 0.0), ContractViolation);
  EXPECT_THROW(ExponentialHistogram(10, 1.5), ContractViolation);
}

class EhAccuracyTest : public ::testing::TestWithParam<double> {};

TEST_P(EhAccuracyTest, RelativeErrorBoundedByEpsilon) {
  // Property check of the DGIM guarantee against an exact sliding window.
  const double epsilon = GetParam();
  const std::uint64_t window = 512;
  ExponentialHistogram eh(window, epsilon);
  Xoshiro256 gen(99);
  std::deque<std::int64_t> exact;  // event timestamps

  for (std::int64_t t = 0; t < 4000; ++t) {
    const bool event = bits_to_unit_double(gen()) < 0.4;
    if (event) {
      eh.add(t);
      exact.push_back(t);
    } else {
      eh.advance(t);
    }
    while (!exact.empty() &&
           exact.front() <= t - static_cast<std::int64_t>(window)) {
      exact.pop_front();
    }
    const double truth = static_cast<double>(exact.size());
    if (truth >= 16.0) {  // bound is meaningful once counts are nontrivial
      EXPECT_LE(std::abs(eh.estimate() - truth), epsilon * truth + 1.0)
          << "t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, EhAccuracyTest,
                         ::testing::Values(0.5, 0.2, 0.1, 0.05));

TEST(ExponentialHistogram, BucketCountIsLogarithmic) {
  // O((1/eps) log n) buckets: doubling the stream length adds O(1/eps).
  const double epsilon = 0.1;
  ExponentialHistogram eh(1 << 14, epsilon);
  std::size_t at_4k = 0;
  for (std::int64_t t = 0; t < (1 << 14); ++t) {
    eh.add(t);
    if (t == (1 << 12)) at_4k = eh.bucket_count();
  }
  const std::size_t at_16k = eh.bucket_count();
  // Two extra doublings => at most ~2 * (1/eps + 2) more buckets.
  EXPECT_LE(at_16k, at_4k + 2 * (static_cast<std::size_t>(1.0 / epsilon) + 2));
}

TEST(ExponentialHistogram, BulkAddMatchesRepeatedAdd) {
  ExponentialHistogram a(100, 0.2);
  ExponentialHistogram b(100, 0.2);
  a.add(1, 5);
  for (int i = 0; i < 5; ++i) b.add(1);
  EXPECT_EQ(a.upper_bound(), b.upper_bound());
  EXPECT_EQ(a.bucket_count(), b.bucket_count());
}

}  // namespace
}  // namespace spca
