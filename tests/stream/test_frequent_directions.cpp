#include "stream/frequent_directions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"

namespace spca {
namespace {

Matrix random_rows(std::size_t n, std::size_t m, std::uint64_t seed) {
  Xoshiro256 gen(seed);
  Matrix a(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) a(i, j) = standard_normal(gen);
  }
  return a;
}

FrequentDirections feed(const Matrix& a, std::size_t sketch_rows) {
  FrequentDirections fd(sketch_rows, a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) fd.append(a.row_span(i));
  return fd;
}

double frob2(const Matrix& a) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) sum += a(i, j) * a(i, j);
  }
  return sum;
}

double quad_form(const Matrix& a, const Vector& x) {
  // x^T (A^T A) x = |A x|^2.
  double sum = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double dot = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) dot += a(i, j) * x[j];
    sum += dot * dot;
  }
  return sum;
}

TEST(FrequentDirections, CountersAndShape) {
  const Matrix a = random_rows(50, 6, 30);
  const FrequentDirections fd = feed(a, 8);
  EXPECT_EQ(fd.rows(), 8u);
  EXPECT_EQ(fd.dim(), 6u);
  EXPECT_EQ(fd.rows_absorbed(), 50u);
  EXPECT_GT(fd.shrinks(), 0u);
  EXPECT_LE(fd.active_rows(), fd.rows());
}

TEST(FrequentDirections, MassConservationIsExact) {
  const Matrix a = random_rows(64, 5, 31);
  const FrequentDirections fd = feed(a, 6);
  EXPECT_NEAR(frob2(a), frob2(fd.sketch()) + fd.removed_mass(),
              1e-9 * frob2(a));
}

TEST(FrequentDirections, CovarianceSandwichHolds) {
  // The FD guarantee: 0 <= x^T(A^T A - B^T B)x <= Delta for every unit x,
  // with Delta = deflation() the cumulative shrink subtraction.
  const Matrix a = random_rows(80, 7, 32);
  const FrequentDirections fd = feed(a, 8);
  EXPECT_GT(fd.deflation(), 0.0);
  // Theory bound on the deflation itself.
  EXPECT_LE(fd.deflation(), 2.0 * frob2(a) / 8.0);
  Xoshiro256 gen(33);
  for (int trial = 0; trial < 20; ++trial) {
    Vector x(7);
    double norm2 = 0.0;
    for (std::size_t j = 0; j < 7; ++j) {
      x[j] = standard_normal(gen);
      norm2 += x[j] * x[j];
    }
    for (std::size_t j = 0; j < 7; ++j) x[j] /= std::sqrt(norm2);
    const double gap = quad_form(a, x) - quad_form(fd.sketch(), x);
    EXPECT_GE(gap, -1e-8) << "trial " << trial;
    EXPECT_LE(gap, fd.deflation() + 1e-8) << "trial " << trial;
  }
}

TEST(FrequentDirections, ScaleAgesSketchAndRemovedMass) {
  const Matrix a = random_rows(40, 4, 34);
  FrequentDirections fd = feed(a, 6);
  const FrequentDirections before = fd;
  fd.scale(0.5);
  EXPECT_EQ(fd.removed_mass(), before.removed_mass() * 0.25);
  EXPECT_EQ(fd.deflation(), before.deflation() * 0.25);
  for (std::size_t r = 0; r < fd.active_rows(); ++r) {
    for (std::size_t c = 0; c < fd.dim(); ++c) {
      EXPECT_EQ(fd.sketch()(r, c), before.sketch()(r, c) * 0.5);
    }
  }
  // Counters describe history, not mass: untouched by decay.
  EXPECT_EQ(fd.rows_absorbed(), before.rows_absorbed());
  EXPECT_EQ(fd.shrinks(), before.shrinks());
}

TEST(FrequentDirections, ScaleByOneIsANoOp) {
  const Matrix a = random_rows(40, 4, 35);
  FrequentDirections fd = feed(a, 6);
  const FrequentDirections before = fd;
  fd.scale(1.0);
  EXPECT_TRUE(fd == before);
}

TEST(FrequentDirections, ScaleRejectsOutOfRangeFactor) {
  FrequentDirections fd(4, 3);
  EXPECT_THROW(fd.scale(1.5), ContractViolation);
  EXPECT_THROW(fd.scale(-0.1), ContractViolation);
}

TEST(FrequentDirections, DecayedSketchTracksRecentCovariance) {
  // Stationary stream along e0, then a regime switch to e1: with decay the
  // sketch's dominant direction follows the switch; without it the old
  // regime keeps dominating.
  const std::size_t m = 4;
  const double gamma = std::sqrt(1.0 - 1.0 / 16.0);
  FrequentDirections decayed(4, m);
  FrequentDirections frozen(4, m);
  std::vector<double> row(m, 0.0);
  for (int phase = 0; phase < 2; ++phase) {
    for (int i = 0; i < 200; ++i) {
      row.assign(m, 0.0);
      row[static_cast<std::size_t>(phase)] = phase == 0 ? 2.0 : 1.0;
      decayed.scale(gamma);
      decayed.append(row);
      frozen.append(row);
    }
  }
  const auto energy = [m](const FrequentDirections& fd, std::size_t axis) {
    Vector x(m);
    x[axis] = 1.0;
    return quad_form(fd.sketch(), x);
  };
  EXPECT_GT(energy(decayed, 1), energy(decayed, 0));
  EXPECT_GT(energy(frozen, 0), energy(frozen, 1));
}

TEST(FrequentDirections, SaveRestoreRoundTripIsExact) {
  const Matrix a = random_rows(30, 5, 36);
  FrequentDirections fd = feed(a, 6);
  ByteWriter writer;
  fd.save_state(writer);
  const std::vector<std::byte> blob = std::move(writer).take();
  ByteReader reader(blob);
  FrequentDirections restored = FrequentDirections::restore_state(reader);
  EXPECT_TRUE(reader.exhausted());
  EXPECT_TRUE(restored == fd);
  // Divergence-free continuation: both absorb the same tail.
  const Matrix tail = random_rows(20, 5, 37);
  for (std::size_t i = 0; i < tail.rows(); ++i) {
    fd.append(tail.row_span(i));
    restored.append(tail.row_span(i));
  }
  EXPECT_TRUE(restored == fd);
}

TEST(FrequentDirections, RestoreRejectsCorruptBlobs) {
  const Matrix a = random_rows(30, 5, 38);
  FrequentDirections fd = feed(a, 6);
  ByteWriter writer;
  fd.save_state(writer);
  const std::vector<std::byte> blob = std::move(writer).take();

  for (std::size_t len = 0; len < blob.size(); len += (len < 48 ? 1 : 61)) {
    const std::vector<std::byte> truncated(
        blob.begin(), blob.begin() + static_cast<std::ptrdiff_t>(len));
    ByteReader reader(truncated);
    EXPECT_THROW((void)FrequentDirections::restore_state(reader),
                 ProtocolError)
        << "length " << len;
  }

  std::vector<std::byte> bad_shape = blob;
  bad_shape[0] = static_cast<std::byte>(0xFF);  // implausible row count
  bad_shape[3] = static_cast<std::byte>(0xFF);
  ByteReader reader(bad_shape);
  EXPECT_THROW((void)FrequentDirections::restore_state(reader),
               ProtocolError);
}

}  // namespace
}  // namespace spca
