#include "stream/variance_histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"
#include "stream/sliding_window.hpp"

namespace spca {
namespace {

TEST(MergeBuckets, CombinesCountsMeansVariances) {
  // Merge {1, 3} (mean 2, V 2) with {5} (mean 5, V 0): union {1,3,5} has
  // mean 3 and V = 4 + 0 + 1 = 8.
  VhBucket a{10, 2, 2.0, 2.0, {}};
  VhBucket b{12, 1, 5.0, 0.0, {}};
  const VhBucket merged = merge_buckets(a, b);
  EXPECT_EQ(merged.count, 3u);
  EXPECT_DOUBLE_EQ(merged.mean, 3.0);
  EXPECT_DOUBLE_EQ(merged.variance, 8.0);
  EXPECT_EQ(merged.timestamp, 10);  // older timestamp wins (eq. text)
}

TEST(MergeBuckets, PayloadsAddElementwise) {
  VhBucket a{1, 1, 0.0, 0.0, {1.0, 2.0}};
  VhBucket b{2, 1, 0.0, 0.0, {10.0, 20.0}};
  const VhBucket merged = merge_buckets(a, b);
  EXPECT_DOUBLE_EQ(merged.payload[0], 11.0);
  EXPECT_DOUBLE_EQ(merged.payload[1], 22.0);
}

TEST(MergeBuckets, EmptyBucketIsIdentity) {
  VhBucket empty;
  VhBucket a{5, 3, 2.0, 1.5, {}};
  const VhBucket left = merge_buckets(empty, a);
  EXPECT_EQ(left.count, 3u);
  EXPECT_DOUBLE_EQ(left.variance, 1.5);
}

TEST(MergeBuckets, MismatchedPayloadsRejected) {
  VhBucket a{1, 1, 0.0, 0.0, {1.0}};
  VhBucket b{2, 1, 0.0, 0.0, {1.0, 2.0}};
  EXPECT_THROW((void)merge_buckets(a, b), ContractViolation);
}

TEST(VarianceHistogram, ExactForShortStreams) {
  // Before any merge the histogram is exact.
  VarianceHistogram vh(64, 0.5);
  SlidingWindowStats exact(64);
  for (std::int64_t t = 0; t < 8; ++t) {
    const double x = static_cast<double>((t * 7) % 5);
    vh.add(t, x);
    exact.add(x);
  }
  EXPECT_NEAR(vh.variance_estimate(), exact.sum_squared_deviations(), 1e-12);
  const VhBucket all = vh.aggregate();
  EXPECT_EQ(all.count, 8u);
  EXPECT_NEAR(all.mean, exact.mean(), 1e-12);
}

TEST(VarianceHistogram, RejectsNonIncreasingTime) {
  VarianceHistogram vh(16, 0.1);
  vh.add(3, 1.0);
  EXPECT_THROW(vh.add(3, 2.0), ContractViolation);
}

TEST(VarianceHistogram, RejectsBadParameters) {
  EXPECT_THROW(VarianceHistogram(1, 0.1), ContractViolation);
  EXPECT_THROW(VarianceHistogram(8, 0.0), ContractViolation);
  EXPECT_THROW(VarianceHistogram(8, 1.0), ContractViolation);
}

TEST(VarianceHistogram, RejectsWrongPayloadSize) {
  VarianceHistogram vh(16, 0.1, 2);
  const double payload[2] = {1.0, 2.0};
  EXPECT_NO_THROW(vh.add(0, 1.0, payload));
  EXPECT_THROW(vh.add(1, 1.0), ContractViolation);
}

// The central property test: Lemma 1's guarantee (1-eps) V <= V-hat <= V
// against the exact sliding-window variance, across epsilons and signal
// shapes.
struct VhCase {
  double epsilon;
  int signal;  // 0 = iid noise, 1 = trend, 2 = diurnal-like, 3 = constant
};

class VhApproximationTest : public ::testing::TestWithParam<VhCase> {
 protected:
  static double sample(int signal, std::int64_t t, Xoshiro256& gen) {
    switch (signal) {
      case 0:
        return 100.0 + 10.0 * standard_normal(gen);
      case 1:
        return 0.05 * static_cast<double>(t) + standard_normal(gen);
      case 2:
        return 50.0 + 20.0 * std::sin(static_cast<double>(t) * 0.02) +
               standard_normal(gen);
      default:
        return 42.0;
    }
  }
};

TEST_P(VhApproximationTest, Lemma1HoldsThroughoutStream) {
  const auto [epsilon, signal] = GetParam();
  const std::uint64_t window = 256;
  VarianceHistogram vh(window, epsilon);
  SlidingWindowStats exact(window);
  Xoshiro256 gen(7 + static_cast<std::uint64_t>(signal));

  for (std::int64_t t = 0; t < 2000; ++t) {
    const double x = sample(signal, t, gen);
    vh.add(t, x);
    exact.add(x);
    const double v_exact = exact.sum_squared_deviations();
    const double v_hat = vh.variance_estimate();
    // Small slack on both sides for floating-point accumulation.
    EXPECT_LE(v_hat, v_exact * (1.0 + 1e-9) + 1e-6) << "t=" << t;
    EXPECT_GE(v_hat, (1.0 - epsilon) * v_exact - 1e-6) << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    EpsilonsAndSignals, VhApproximationTest,
    ::testing::Values(VhCase{0.01, 0}, VhCase{0.05, 0}, VhCase{0.2, 0},
                      VhCase{0.01, 1}, VhCase{0.1, 1}, VhCase{0.01, 2},
                      VhCase{0.1, 2}, VhCase{0.05, 3}));

TEST(VarianceHistogram, BucketCountStaysLogarithmic) {
  // Space bound: O((1/eps) log n) buckets.
  const double epsilon = 0.05;
  const std::uint64_t window = 4096;
  VarianceHistogram vh(window, epsilon);
  Xoshiro256 gen(13);
  std::size_t max_buckets = 0;
  for (std::int64_t t = 0; t < 3 * static_cast<std::int64_t>(window); ++t) {
    vh.add(t, 100.0 + 5.0 * standard_normal(gen));
    max_buckets = std::max(max_buckets, vh.bucket_count());
  }
  const double budget =
      (1.0 / epsilon) * std::log2(static_cast<double>(window)) * 8.0;
  EXPECT_LT(static_cast<double>(max_buckets), budget);
}

TEST(VarianceHistogram, WindowCountNeverExceedsN) {
  VarianceHistogram vh(32, 0.2);
  Xoshiro256 gen(5);
  for (std::int64_t t = 0; t < 300; ++t) {
    vh.add(t, standard_normal(gen));
    EXPECT_LE(vh.aggregate().count, 32u);
  }
}

TEST(VarianceHistogram, ConstantStreamHasZeroVariance) {
  VarianceHistogram vh(64, 0.1);
  for (std::int64_t t = 0; t < 200; ++t) {
    vh.add(t, 3.25);
  }
  EXPECT_NEAR(vh.variance_estimate(), 0.0, 1e-9);
  EXPECT_NEAR(vh.aggregate().mean, 3.25, 1e-12);
}

TEST(VarianceHistogram, TimestampGapsExpireEverything) {
  VarianceHistogram vh(16, 0.1);
  vh.add(0, 1.0);
  vh.add(1, 2.0);
  vh.add(100, 3.0);  // jump far beyond the window
  const VhBucket all = vh.aggregate();
  EXPECT_EQ(all.count, 1u);
  EXPECT_DOUBLE_EQ(all.mean, 3.0);
}

TEST(VarianceHistogram, PayloadSumsAreExactDespiteMerging) {
  // The additive payload (the sketch's Z and R sums) is never approximated:
  // merging only combines partial sums, so the aggregate payload must equal
  // the exact running sum over retained elements — and over ALL window
  // elements whenever no bucket has expired yet.
  const std::uint64_t window = 128;
  VarianceHistogram vh(window, 0.5, /*payload_size=*/3);
  Xoshiro256 gen(21);
  double exact[3] = {0.0, 0.0, 0.0};
  for (std::int64_t t = 0; t < static_cast<std::int64_t>(window); ++t) {
    const double x = 10.0 + standard_normal(gen);
    const double payload[3] = {x, 2.0 * x, 1.0};
    vh.add(t, x, payload);
    for (int k = 0; k < 3; ++k) exact[k] += payload[k];
    const VhBucket all = vh.aggregate();
    for (int k = 0; k < 3; ++k) {
      ASSERT_NEAR(all.payload[k], exact[k], 1e-9 * std::abs(exact[k]))
          << "t=" << t << " k=" << k;
    }
  }
}

TEST(VarianceHistogram, PayloadMatchesRetainedElementSumAfterExpiry) {
  // Past the window boundary the retained subsequence is what the aggregate
  // summarizes; its count tells exactly which suffix of elements survived,
  // and the payload must be the exact sum over that suffix.
  const std::uint64_t window = 64;
  VarianceHistogram vh(window, 0.5, /*payload_size=*/1);
  std::vector<double> values;
  Xoshiro256 gen(22);
  for (std::int64_t t = 0; t < 300; ++t) {
    const double x = 5.0 + standard_normal(gen);
    values.push_back(x);
    const double payload[1] = {x};
    vh.add(t, x, payload);
    const VhBucket all = vh.aggregate();
    double suffix_sum = 0.0;
    for (std::size_t i = values.size() - all.count; i < values.size(); ++i) {
      suffix_sum += values[i];
    }
    ASSERT_NEAR(all.payload[0], suffix_sum, 1e-9 * std::abs(suffix_sum))
        << "t=" << t;
    ASSERT_NEAR(all.mean, suffix_sum / static_cast<double>(all.count),
                1e-9) << "t=" << t;
  }
}

TEST(VarianceHistogram, MemoryBytesTracksBuckets) {
  VarianceHistogram vh(64, 0.1, 4);
  const std::size_t empty_bytes = vh.memory_bytes();
  const double payload[4] = {1, 2, 3, 4};
  vh.add(0, 1.0, payload);
  EXPECT_GT(vh.memory_bytes(), empty_bytes);
}

}  // namespace
}  // namespace spca
