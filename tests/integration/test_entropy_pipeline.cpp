// End-to-end feature-entropy pipeline on the small topology: packets with
// Zipf addresses -> per-flow destination-address entropy -> sketch PCA;
// an address scan that is invisible in volume must be caught in entropy,
// and the Count-Min heavy hitter must name the scanning host.
#include <gtest/gtest.h>

#include "core/sketch_detector.hpp"
#include "sketch/count_min.hpp"
#include "synth/address_model.hpp"
#include "synth/packet_synthesizer.hpp"
#include "synth/traffic_model.hpp"
#include "traffic/entropy.hpp"
#include "traffic/volume_counter.hpp"

namespace spca {
namespace {

Topology tiny_topology() {
  return Topology({"A", "B", "C", "D"},
                  {Link{0, 1, 1.0}, Link{1, 2, 1.0}, Link{2, 3, 1.0},
                   Link{3, 0, 1.0}});
}

TEST(EntropyPipeline, ScanInvisibleInVolumeCaughtInEntropy) {
  const Topology topo = tiny_topology();
  const std::uint32_t routers = topo.num_routers();
  TrafficModelConfig traffic;
  traffic.num_intervals = 140;
  traffic.seed = 5;
  traffic.bytes_per_second = 5.0e4;
  traffic.diurnal.daily_amplitude = 0.0;
  traffic.diurnal.harmonic_amplitude = 0.0;
  traffic.diurnal.weekend_dip = 0.0;
  const TraceSet trace = generate_traffic(topo, traffic);
  const std::size_t m = trace.num_flows();

  const FlowId scanned = od_flow_id(0, 2, routers);
  const std::int64_t scan_start = 120;
  const std::int64_t scan_end = 122;

  SketchDetectorConfig config;
  config.window = 96;
  config.sketch_rows = 32;
  config.rank_policy = RankPolicy::fixed(3);
  config.alpha = 0.001;
  config.seed = 9;
  SketchDetector volume_detector(m, config);
  SketchDetector entropy_detector(m, config);

  const AddressModel addresses;
  VolumeCounter volumes(static_cast<std::uint32_t>(m));
  EntropyAggregator entropy(static_cast<std::uint32_t>(m),
                            EntropyAggregator::Feature::kDestinationAddress);
  HeavyHitterTracker scanned_flow_sources(16, 0.01, 0.01, 77);

  bool volume_alarm_in_scan = false;
  bool entropy_alarm_in_scan = false;
  std::uint32_t true_scanner = 0;
  std::uint32_t identified_scanner = 0;

  for (std::size_t t = 0; t < trace.num_intervals(); ++t) {
    auto packets =
        synthesize_interval(trace, t, routers, PacketSizeModel{}, 100 + t);
    assign_addresses(packets, addresses, 200 + t);
    const bool scan_now = static_cast<std::int64_t>(t) >= scan_start &&
                          static_cast<std::int64_t>(t) <= scan_end;
    if (scan_now) {
      const auto burst = synthesize_scan_packets(
          scanned, routers, static_cast<std::int64_t>(t), 400, 64,
          addresses, 300);
      true_scanner = burst.front().src_addr;
      packets.insert(packets.end(), burst.begin(), burst.end());
    }
    scanned_flow_sources.reset();
    for (const auto& p : packets) {
      volumes.record_packet(p, routers);
      entropy.record(p, routers);
      if (od_flow_id(p.origin, p.destination, routers) == scanned) {
        scanned_flow_sources.add(p.src_addr);
      }
    }
    const Detection dv = volume_detector.observe(
        static_cast<std::int64_t>(t), volumes.end_interval());
    const Detection de = entropy_detector.observe(
        static_cast<std::int64_t>(t), entropy.end_interval());
    if (scan_now) {
      volume_alarm_in_scan = volume_alarm_in_scan || dv.alarm;
      if (de.alarm && identified_scanner == 0) {
        entropy_alarm_in_scan = true;
        const auto top = scanned_flow_sources.top(1);
        ASSERT_FALSE(top.empty());
        identified_scanner = top[0].key;
      }
    }
  }

  EXPECT_FALSE(volume_alarm_in_scan)
      << "the scan should be invisible in the volume view";
  EXPECT_TRUE(entropy_alarm_in_scan);
  EXPECT_EQ(identified_scanner, true_scanner);
}

}  // namespace
}  // namespace spca
