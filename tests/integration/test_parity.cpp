// Cross-implementation parity and determinism properties.
#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "core/evaluation.hpp"
#include "core/sketch_detector.hpp"
#include "dist/distributed_detector.hpp"

namespace spca {
namespace {

using testing::small_topology;
using testing::small_trace;

SketchDetectorConfig base_config() {
  SketchDetectorConfig config;
  config.window = 64;
  config.sketch_rows = 24;
  config.rank_policy = RankPolicy::fixed(3);
  config.seed = 1234;
  return config;
}

TEST(Parity, SketchDetectorIsDeterministic) {
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 120, 1, 3, 70);
  SketchDetector a(trace.num_flows(), base_config());
  SketchDetector b(trace.num_flows(), base_config());
  const DetectorRun run_a = run_detector(a, trace);
  const DetectorRun run_b = run_detector(b, trace);
  for (std::size_t t = 0; t < 120; ++t) {
    EXPECT_EQ(run_a.detections[t].alarm, run_b.detections[t].alarm);
    EXPECT_EQ(run_a.detections[t].distance, run_b.detections[t].distance);
  }
}

TEST(Parity, DifferentSeedsChangeSketchesNotSemantics) {
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 160, 2);
  SketchDetectorConfig config_a = base_config();
  config_a.sketch_rows = 64;  // enough rows that the model is seed-stable
  SketchDetectorConfig config_b = config_a;
  config_b.seed = 4321;
  SketchDetector a(trace.num_flows(), config_a);
  SketchDetector b(trace.num_flows(), config_b);
  const DetectorRun run_a = run_detector(a, trace);
  const DetectorRun run_b = run_detector(b, trace);
  // Verdicts should agree on the vast majority of quiet intervals even
  // though the underlying sketches differ.
  std::size_t agree = 0, total = 0;
  for (std::size_t t = 64; t < 160; ++t) {
    ++total;
    if (run_a.detections[t].alarm == run_b.detections[t].alarm) ++agree;
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.75);
}

TEST(Parity, MonitorPartitioningDoesNotChangeVerdicts) {
  // 1, 2, 4, or 8 monitors: the deployment is a pure partitioning detail.
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 130, 3, 3, 70);
  const SketchDetectorConfig config = base_config();

  DistributedDetector one(trace.num_flows(), 1, config);
  DistributedDetector four(trace.num_flows(), 4, config);
  DistributedDetector eight(trace.num_flows(), 8, config);
  const DetectorRun run_one = run_detector(one, trace);
  const DetectorRun run_four = run_detector(four, trace);
  const DetectorRun run_eight = run_detector(eight, trace);

  for (std::size_t t = 0; t < 130; ++t) {
    EXPECT_EQ(run_one.detections[t].alarm, run_four.detections[t].alarm)
        << "t=" << t;
    EXPECT_EQ(run_four.detections[t].alarm, run_eight.detections[t].alarm)
        << "t=" << t;
    EXPECT_NEAR(run_one.detections[t].distance,
                run_eight.detections[t].distance,
                1e-6 * (1.0 + run_one.detections[t].distance));
  }
}

TEST(Parity, ProjectionSchemesAllDetectTheSameSpike) {
  const Topology topo = small_topology();
  TraceSet trace = testing::flat_trace(topo, 160, 4);
  // Clear but not spectrum-dominating (see the poisoning note in the
  // Lakhina spike test).
  for (const std::size_t f : {1u, 6u, 9u}) {
    trace.volumes()(150, f) *= 1.4;
  }
  for (const auto kind :
       {ProjectionKind::kGaussian, ProjectionKind::kTugOfWar,
        ProjectionKind::kSparse, ProjectionKind::kVerySparse}) {
    SketchDetectorConfig config = base_config();
    config.window = 128;
    config.projection = kind;
    config.sketch_rows = 64;
    SketchDetector detector(trace.num_flows(), config);
    const DetectorRun run = run_detector(detector, trace);
    EXPECT_TRUE(run.detections[150].alarm) << to_string(kind);
  }
}

}  // namespace
}  // namespace spca
