// Statistical verification of the paper's theoretical claims (Sec. V):
//   Lemma 1  — VH variance approximation (covered in stream tests)
//   Lemma 4  — sketch norm ~ centered column norm (covered in sketch tests)
//   Lemma 5  — partial spectral sums of Z-hat approximate those of Y
//   Lemma 6  — covariance approximation in Frobenius norm
//   Theorem 2 — anomaly distances under the sketch model approximate the
//               exact distances when the spectral gap is healthy
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "../helpers.hpp"
#include "core/sketch_detector.hpp"
#include "linalg/stats.hpp"
#include "linalg/svd.hpp"
#include "pca/pca_model.hpp"
#include "sketch/random_projection.hpp"

namespace spca {
namespace {

using testing::small_topology;
using testing::small_trace;

struct SketchSetup {
  Matrix y;        // centered window matrix
  Matrix z;        // exact random projection of y
  Svd y_svd;
  Svd z_svd;
};

SketchSetup project_trace(std::size_t n, std::size_t l, std::uint64_t seed) {
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, n, seed);
  SketchSetup setup;
  setup.y = center_columns(trace.volumes());
  // Rescale to O(1) magnitudes so tolerances are easy to read.
  setup.y *= 1.0 / frobenius_norm(setup.y);
  const ProjectionSource source(ProjectionKind::kGaussian, seed * 7 + 1);
  setup.z = project_columns(setup.y, source, 0, l);
  setup.y_svd = svd(setup.y, false);
  setup.z_svd = svd(setup.z, false);
  return setup;
}

TEST(Lemma5, PartialSpectralSumsPreserved) {
  const SketchSetup setup = project_trace(256, 512, 3);
  const std::size_t m = setup.y.cols();
  double y_sum = 0.0, z_sum = 0.0;
  for (std::size_t r = 0; r < m; ++r) {
    y_sum += setup.y_svd.values[r] * setup.y_svd.values[r];
    z_sum += setup.z_svd.values[r] * setup.z_svd.values[r];
    // (1 - eps) sum <= sum-hat <= (1 + eps) sum with eps modest at l=512.
    EXPECT_GT(z_sum, 0.55 * y_sum) << "r=" << r;
    EXPECT_LT(z_sum, 1.45 * y_sum) << "r=" << r;
  }
}

TEST(Lemma5, LeadingSingularValueTightlyPreserved) {
  const SketchSetup setup = project_trace(256, 512, 4);
  EXPECT_NEAR(setup.z_svd.values[0] / setup.y_svd.values[0], 1.0, 0.2);
}

TEST(Lemma6, CovarianceApproximatedInFrobeniusNorm) {
  const SketchSetup setup = project_trace(256, 768, 5);
  const Matrix vy = gram(setup.y);
  const Matrix vz = gram(setup.z);
  const double rel =
      frobenius_norm(vz - vy) / (frobenius_norm(setup.y) *
                                 frobenius_norm(setup.y));
  // |V - A|_F <= sqrt(6 eps) |Y|_F^2; at l = 768 the effective eps is small.
  EXPECT_LT(rel, 0.35);
}

TEST(Lemma6, ErrorShrinksWithSketchLength) {
  // Average over seeds to smooth concentration noise, then check the
  // monotone trend in l.
  double err_small = 0.0, err_large = 0.0;
  constexpr int kSeeds = 4;
  for (int s = 0; s < kSeeds; ++s) {
    const Topology topo = small_topology();
    const TraceSet trace = small_trace(topo, 192, 50 + s);
    Matrix y = center_columns(trace.volumes());
    y *= 1.0 / frobenius_norm(y);
    const Matrix vy = gram(y);
    const ProjectionSource source(ProjectionKind::kGaussian, 900 + s);
    const Matrix z_small = project_columns(y, source, 0, 24);
    const Matrix z_large = project_columns(y, source, 0, 512);
    err_small += frobenius_norm(gram(z_small) - vy);
    err_large += frobenius_norm(gram(z_large) - vy);
  }
  EXPECT_LT(err_large, err_small);
}

TEST(Theorem2, AnomalyDistancesApproximated) {
  const std::size_t n = 256;
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, n, 6);
  const Matrix x = trace.volumes();
  const PcaModel exact = PcaModel::from_data(x);

  const ProjectionSource source(ProjectionKind::kGaussian, 77);
  const Matrix y = center_columns(x);
  const Matrix z = project_columns(y, source, 0, 512);
  const PcaModel sketched = PcaModel::from_sketch(z, column_means(x), n);

  // Pick r where the spectral gap eta_r^2 - eta_{r+1}^2 is healthy.
  const std::size_t r = 2;
  RunningStats rel_error;
  for (std::size_t i = 0; i < n; i += 8) {
    const Vector probe = x.row(i);
    const double de = exact.anomaly_distance(probe, r);
    const double ds = sketched.anomaly_distance(probe, r);
    if (de > 0.0) rel_error.add(std::abs(ds - de) / de);
  }
  EXPECT_LT(rel_error.mean(), 0.30);
}

TEST(Theorem2, DistanceOrderingLargelyPreserved) {
  // Even when absolute distances drift, anomalies (large residuals) must
  // remain large under the sketch model: check the top-5 by exact distance
  // are within the top-15 by sketch distance.
  const std::size_t n = 200;
  const Topology topo = small_topology();
  TraceSet trace = small_trace(topo, n, 7, /*anomalies=*/5, /*warmup=*/20);
  const Matrix x = trace.volumes();
  const PcaModel exact = PcaModel::from_data(x);
  const ProjectionSource source(ProjectionKind::kGaussian, 88);
  const Matrix z = project_columns(center_columns(x), source, 0, 256);
  const PcaModel sketched = PcaModel::from_sketch(z, column_means(x), n);

  const std::size_t r = 3;
  std::vector<std::pair<double, std::size_t>> by_exact, by_sketch;
  for (std::size_t i = 0; i < n; ++i) {
    const Vector probe = x.row(i);
    by_exact.emplace_back(exact.anomaly_distance(probe, r), i);
    by_sketch.emplace_back(sketched.anomaly_distance(probe, r), i);
  }
  std::sort(by_exact.rbegin(), by_exact.rend());
  std::sort(by_sketch.rbegin(), by_sketch.rend());
  std::set<std::size_t> sketch_top;
  for (std::size_t k = 0; k < 15; ++k) sketch_top.insert(by_sketch[k].second);
  std::size_t hits = 0;
  for (std::size_t k = 0; k < 5; ++k) {
    if (sketch_top.contains(by_exact[k].second)) ++hits;
  }
  EXPECT_GE(hits, 4u);
}

TEST(Theorem1Accounting, SketchStateGrowsLogarithmicallyInWindow) {
  // Space claim: per-flow summary ~ O((1/eps) l log n). The merge rules
  // only start compacting once the window dwarfs 20/eps elements, so the
  // check uses eps = 0.2 and window sizes in the compacting regime:
  // 16x more window must cost well under 4x the bytes.
  const Topology topo = small_topology();
  const std::size_t l = 8;
  const auto bytes_for = [&](std::size_t n) {
    const TraceSet trace = small_trace(topo, 2 * n, 8);
    SketchDetectorConfig config;
    config.window = n;
    config.epsilon = 0.2;
    config.sketch_rows = l;
    config.rank_policy = RankPolicy::fixed(2);
    SketchDetector detector(trace.num_flows(), config);
    for (std::size_t t = 0; t < 2 * n; ++t) {
      (void)detector.observe(static_cast<std::int64_t>(t), trace.row(t));
    }
    return detector.memory_bytes();
  };
  const std::size_t small_bytes = bytes_for(1024);
  const std::size_t big_bytes = bytes_for(16384);
  EXPECT_LT(static_cast<double>(big_bytes),
            4.0 * static_cast<double>(small_bytes));
}

}  // namespace
}  // namespace spca
