// End-to-end integration: Abilene topology -> synthetic traffic -> packet
// stream -> local monitors (volume counter + sketches) -> NOC lazy protocol
// -> alarms, checked against injected ground truth.
#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "core/evaluation.hpp"
#include "core/lakhina_detector.hpp"
#include "core/sketch_detector.hpp"
#include "dist/distributed_detector.hpp"
#include "dist/sim_network.hpp"
#include "synth/packet_synthesizer.hpp"
#include "traffic/routing.hpp"

namespace spca {
namespace {

TEST(EndToEnd, AbileneSketchDetectorCatchesInjectedDdos) {
  const Topology topo = abilene_topology();
  TrafficModelConfig model_config;
  model_config.num_intervals = 200;
  model_config.seed = 21;
  TraceSet trace = generate_traffic(topo, model_config);
  AnomalyInjector injector(topo, 5);
  injector.inject_ddos(trace, 180, 3, topo.router_id("NEWY"), 2.5);

  SketchDetectorConfig config;
  config.window = 144;
  config.sketch_rows = 64;
  config.rank_policy = RankPolicy::fixed(6);
  config.seed = 11;
  SketchDetector detector(trace.num_flows(), config);
  const DetectorRun run = run_detector(detector, trace);

  bool caught = false;
  for (std::int64_t t = 180; t <= 182; ++t) {
    caught = caught || run.detections[static_cast<std::size_t>(t)].alarm;
  }
  EXPECT_TRUE(caught);
}

TEST(EndToEnd, CoordinatedLowProfileBotnetDetected) {
  // The paper's raison d'etre: small coordinated increases that are
  // invisible per-flow but stick out of the PCA residual.
  const Topology topo = abilene_topology();
  TrafficModelConfig model_config;
  model_config.num_intervals = 220;
  model_config.seed = 22;
  TraceSet trace = generate_traffic(topo, model_config);
  std::vector<FlowId> bots;
  for (const auto& [o, d] :
       std::vector<std::pair<const char*, const char*>>{
           {"ATLA", "CHIC"}, {"CHIC", "KANS"}, {"CHIC", "SALT"},
           {"SEAT", "SALT"}, {"LOSA", "HOUS"}, {"NEWY", "WASH"}}) {
    bots.push_back(topo.flow_id(o, d));
  }
  AnomalyInjector injector(topo, 6);
  injector.inject_botnet(trace, 200, 4, bots, 3.0);

  SketchDetectorConfig config;
  config.window = 144;
  config.sketch_rows = 96;
  config.rank_policy = RankPolicy::fixed(6);
  config.seed = 13;
  SketchDetector detector(trace.num_flows(), config);
  const DetectorRun run = run_detector(detector, trace);

  bool caught = false;
  for (std::int64_t t = 200; t <= 203; ++t) {
    caught = caught || run.detections[static_cast<std::size_t>(t)].alarm;
  }
  EXPECT_TRUE(caught);

  // Per-flow sanity: the injected bump is low-profile, well under the
  // flow's own peak-to-mean excursions.
  const FlowId f = bots[0];
  double peak = 0.0, mean = 0.0;
  for (std::size_t t = 0; t < 200; ++t) {
    peak = std::max(peak, trace.volumes()(t, f));
    mean += trace.volumes()(t, f);
  }
  mean /= 200.0;
  EXPECT_LT(trace.volumes()(201, f), peak * 1.15)
      << "anomaly should not be a blatant per-flow spike";
  EXPECT_GT(trace.volumes()(201, f), mean);
}

TEST(EndToEnd, PacketPathFeedsDistributedDeploymentByteExact) {
  // Drive two intervals of a small deployment from an actual packet stream
  // and confirm the NOC assembles exactly the per-flow packet byte sums.
  const Topology topo = testing::small_topology();
  TrafficModelConfig model_config;
  model_config.num_intervals = 2;
  model_config.seed = 23;
  // Tiny volumes so packet counts stay manageable.
  model_config.bytes_per_second = 2000.0;
  const TraceSet trace = generate_traffic(topo, model_config);

  const ProjectionSource source(ProjectionKind::kGaussian, 3);
  SimNetwork net;
  std::vector<LocalMonitor> monitors;
  monitors.emplace_back(1, std::vector<FlowId>{0, 1, 2, 3, 4, 5, 6, 7}, 8,
                        0.1, 4, source);
  monitors.emplace_back(2, std::vector<FlowId>{8, 9, 10, 11, 12, 13, 14, 15},
                        8, 0.1, 4, source);
  Noc noc(16, NocConfig{8, 4, 0.01, RankPolicy::fixed(2), true});

  for (std::size_t t = 0; t < 2; ++t) {
    const auto packets =
        synthesize_interval(trace, t, topo.num_routers(), PacketSizeModel{}, 9);
    Vector expected(16);
    for (const auto& p : packets) {
      const FlowId flow = od_flow_id(p.origin, p.destination, 4);
      monitors[flow < 8 ? 0 : 1].record(flow, p.size_bytes);
      expected[flow] += static_cast<double>(p.size_bytes);
    }
    for (auto& m : monitors) {
      m.end_interval(static_cast<std::int64_t>(t), net);
    }
    const Vector assembled =
        noc.collect_volumes(static_cast<std::int64_t>(t), net);
    for (std::size_t j = 0; j < 16; ++j) {
      EXPECT_DOUBLE_EQ(assembled[j], expected[j]) << "flow " << j;
    }
  }
}

TEST(EndToEnd, SketchTypeErrorsAgainstLakhinaGroundTruthAreModest) {
  // A miniature of the paper's Sec. VI protocol on the small topology.
  const Topology topo = testing::small_topology();
  const TraceSet trace =
      testing::small_trace(topo, 300, 24, /*anomalies=*/8, /*warmup=*/130);

  LakhinaConfig exact_config;
  exact_config.window = 128;
  exact_config.rank_policy = RankPolicy::fixed(3);
  LakhinaDetector exact(trace.num_flows(), exact_config);
  const DetectorRun reference = run_detector(exact, trace);

  SketchDetectorConfig sketch_config;
  sketch_config.window = 128;
  sketch_config.sketch_rows = 96;
  sketch_config.rank_policy = RankPolicy::fixed(3);
  sketch_config.seed = 31;
  sketch_config.lazy = false;
  SketchDetector sketch(trace.num_flows(), sketch_config);
  const DetectorRun run = run_detector(sketch, trace);

  const ConfusionMatrix cm = score_against_reference(run, reference);
  EXPECT_LT(cm.type1_error(), 0.15);
  EXPECT_LT(cm.type2_error(), 0.55);
}

}  // namespace
}  // namespace spca
