// Regression test for the paper's headline result (Figs. 7-9, scaled
// down): against exact-Lakhina ground truth, the sketch detector's error
// drops substantially as the sketch length l grows, and at generous l the
// two detectors agree on almost every interval.
#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "core/evaluation.hpp"
#include "core/lakhina_detector.hpp"
#include "core/sketch_detector.hpp"

namespace spca {
namespace {

using testing::small_topology;
using testing::small_trace;

struct ProtocolRuns {
  ConfusionMatrix tiny_l;
  ConfusionMatrix generous_l;
};

ProtocolRuns run_protocol(std::uint64_t seed) {
  const Topology topo = small_topology();
  const TraceSet trace =
      small_trace(topo, 384, seed, /*anomalies=*/8, /*warmup=*/192);

  LakhinaConfig exact_config;
  exact_config.window = 192;
  exact_config.rank_policy = RankPolicy::fixed(3);
  exact_config.recompute_period = 2;
  LakhinaDetector exact(trace.num_flows(), exact_config);
  const DetectorRun truth = run_detector(exact, trace);

  const auto run_l = [&](std::size_t l) {
    SketchDetectorConfig config;
    config.window = 192;
    config.sketch_rows = l;
    config.rank_policy = RankPolicy::fixed(3);
    config.seed = seed * 31 + 7;
    SketchDetector sketch(trace.num_flows(), config);
    const DetectorRun run = run_detector(sketch, trace);
    return score_against_reference(run, truth);
  };
  return ProtocolRuns{run_l(4), run_l(96)};
}

TEST(PaperProtocol, ErrorDropsSteeplyWithSketchLength) {
  // Aggregate over seeds to keep the assertion stable.
  double tiny_error = 0.0, generous_error = 0.0;
  for (const std::uint64_t seed : {101u, 202u, 303u}) {
    const ProtocolRuns runs = run_protocol(seed);
    tiny_error += runs.tiny_l.type1_error() + runs.tiny_l.type2_error();
    generous_error +=
        runs.generous_l.type1_error() + runs.generous_l.type2_error();
  }
  // Fig. 9's shape: generous l must beat tiny l by a wide margin.
  EXPECT_LT(generous_error, 0.6 * tiny_error);
}

TEST(PaperProtocol, GenerousSketchAgreesWithExactAlmostEverywhere) {
  const ProtocolRuns runs = run_protocol(404);
  const ConfusionMatrix& cm = runs.generous_l;
  const double agreement =
      static_cast<double>(cm.true_positives + cm.true_negatives) /
      static_cast<double>(cm.total());
  EXPECT_GT(agreement, 0.9);
}

}  // namespace
}  // namespace spca
