// CheckpointStore: atomic durable snapshots with validation strong enough
// that a restarted daemon never trusts a torn or bit-flipped file.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/checkpoint_store.hpp"
#include "common/error.hpp"

namespace spca {
namespace {

namespace fs = std::filesystem;

class TempDir final {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = fs::temp_directory_path() /
            ("spca-ckpt-" + tag + "-" + std::to_string(::getpid()));
    fs::remove_all(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

std::vector<std::byte> blob_of(const std::string& text) {
  std::vector<std::byte> out(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    out[i] = static_cast<std::byte>(text[i]);
  }
  return out;
}

std::vector<char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(CheckpointStore, WriteThenLoadRoundTripsPayloadAndSeq) {
  const TempDir dir("roundtrip");
  CheckpointStore store(dir.str(), "monitor1");
  const std::vector<std::byte> payload = blob_of("sketch state bytes");
  const std::string path = store.write(17, payload);
  EXPECT_TRUE(fs::exists(path));

  const auto latest = store.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->seq, 17u);
  EXPECT_EQ(latest->payload, payload);
  EXPECT_EQ(latest->path, path);
}

TEST(CheckpointStore, EmptyDirectoryLoadsNothing) {
  const TempDir dir("empty");
  const CheckpointStore store(dir.str(), "monitor1");
  EXPECT_FALSE(store.load_latest().has_value());
  EXPECT_TRUE(store.list().empty());
}

TEST(CheckpointStore, LatestWinsAndNamespacesAreIsolated) {
  const TempDir dir("latest");
  CheckpointStore a(dir.str(), "monitor1");
  CheckpointStore b(dir.str(), "monitor2");
  (void)a.write(3, blob_of("m1 old"));
  (void)a.write(9, blob_of("m1 new"));
  (void)b.write(5, blob_of("m2"));

  EXPECT_EQ(a.load_latest()->seq, 9u);
  EXPECT_EQ(a.load_latest()->payload, blob_of("m1 new"));
  EXPECT_EQ(b.load_latest()->seq, 5u);
  EXPECT_EQ(b.load_latest()->payload, blob_of("m2"));
}

TEST(CheckpointStore, RetainLimitPrunesOldestFirst) {
  const TempDir dir("retain");
  CheckpointStore store(dir.str(), "noc", /*retain=*/2);
  (void)store.write(1, blob_of("one"));
  (void)store.write(2, blob_of("two"));
  (void)store.write(3, blob_of("three"));

  const std::vector<std::string> kept = store.list();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(CheckpointStore::read_snapshot(kept[0]).seq, 2u);
  EXPECT_EQ(CheckpointStore::read_snapshot(kept[1]).seq, 3u);
}

TEST(CheckpointStore, TruncatedSnapshotIsRejected) {
  const TempDir dir("truncated");
  CheckpointStore store(dir.str(), "monitor1");
  const std::string path = store.write(4, blob_of("payload under test"));

  const std::vector<char> full = read_file(path);
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{10}, full.size() - 1}) {
    write_file(path, std::vector<char>(full.begin(),
                                       full.begin() +
                                           static_cast<std::ptrdiff_t>(keep)));
    EXPECT_THROW((void)CheckpointStore::read_snapshot(path), ProtocolError)
        << "kept " << keep << " of " << full.size() << " bytes";
  }
}

TEST(CheckpointStore, EveryPossibleBitFlipIsRejected) {
  const TempDir dir("bitflip");
  CheckpointStore store(dir.str(), "monitor1");
  const std::string path = store.write(11, blob_of("abcdefgh"));
  const std::vector<char> good = read_file(path);
  EXPECT_NO_THROW((void)CheckpointStore::read_snapshot(path));

  for (std::size_t i = 0; i < good.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<char> bad = good;
      bad[i] = static_cast<char>(bad[i] ^ (1 << bit));
      write_file(path, bad);
      EXPECT_THROW((void)CheckpointStore::read_snapshot(path), ProtocolError)
          << "byte " << i << " bit " << bit;
    }
  }
}

TEST(CheckpointStore, TrailingGarbageIsRejected) {
  const TempDir dir("trailing");
  CheckpointStore store(dir.str(), "monitor1");
  const std::string path = store.write(2, blob_of("data"));
  std::vector<char> padded = read_file(path);
  padded.push_back('\0');
  write_file(path, padded);
  EXPECT_THROW((void)CheckpointStore::read_snapshot(path), ProtocolError);
}

TEST(CheckpointStore, LoadLatestFallsBackPastACorruptNewestSnapshot) {
  const TempDir dir("fallback");
  CheckpointStore store(dir.str(), "monitor1");
  (void)store.write(5, blob_of("good old"));
  const std::string newest = store.write(8, blob_of("bad new"));

  std::vector<char> bad = read_file(newest);
  bad.back() = static_cast<char>(bad.back() ^ 0x01);
  write_file(newest, bad);

  const auto latest = store.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->seq, 5u);
  EXPECT_EQ(latest->payload, blob_of("good old"));
}

TEST(CheckpointStore, StrayFilesInTheDirectoryAreIgnored) {
  const TempDir dir("stray");
  CheckpointStore store(dir.str(), "monitor1");
  (void)store.write(1, blob_of("real"));
  write_file(dir.str() + "/monitor1.notanumber.ckpt", {'x'});
  write_file(dir.str() + "/monitor1.3.ckpt.tmp", {'y'});
  write_file(dir.str() + "/unrelated.txt", {'z'});

  ASSERT_EQ(store.list().size(), 1u);
  EXPECT_EQ(store.load_latest()->seq, 1u);
}

TEST(CheckpointStore, WriteLeavesNoTemporaryBehind) {
  const TempDir dir("tmpclean");
  CheckpointStore store(dir.str(), "monitor1");
  (void)store.write(1, blob_of("payload"));
  for (const auto& entry : fs::directory_iterator(dir.str())) {
    EXPECT_EQ(entry.path().extension().string(), ".ckpt")
        << entry.path().string();
  }
}

TEST(CheckpointStore, EmptyPayloadRoundTrips) {
  const TempDir dir("emptypayload");
  CheckpointStore store(dir.str(), "noc");
  (void)store.write(0, {});
  const auto latest = store.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->seq, 0u);
  EXPECT_TRUE(latest->payload.empty());
}

TEST(CheckpointStore, MissingFileThrowsTransportError) {
  const TempDir dir("missing");
  const CheckpointStore store(dir.str(), "monitor1");
  EXPECT_THROW((void)CheckpointStore::read_snapshot(dir.str() + "/nope.ckpt"),
               TransportError);
}

}  // namespace
}  // namespace spca
