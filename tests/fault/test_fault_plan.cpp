// FaultPlan: spec-string parsing, replayability, and stream independence —
// the properties that make a chaos schedule a deterministic artifact.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "dist/aggregate.hpp"
#include "fault/fault_plan.hpp"

namespace spca {
namespace {

TEST(FaultPlan, EmptySpecMeansNoFaults) {
  const FaultPlanConfig config = parse_fault_spec("");
  EXPECT_EQ(config.drop, 0.0);
  EXPECT_EQ(config.duplicate, 0.0);
  EXPECT_EQ(config.reorder, 0.0);
  EXPECT_EQ(config.corrupt, 0.0);
  EXPECT_TRUE(config.kills.empty());
  EXPECT_TRUE(config.resets.empty());

  FaultPlan plan(config);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(plan.next_drop());
    EXPECT_FALSE(plan.next_duplicate());
    EXPECT_FALSE(plan.next_reorder());
    EXPECT_FALSE(plan.next_corrupt());
  }
}

TEST(FaultPlan, SpecRoundTripsThroughToString) {
  const std::string spec =
      "drop=0.05,dup=0.02,reorder=0.1,corrupt=0.03,kill=1@18,reset=2@9,"
      "seed=42";
  const FaultPlanConfig config = parse_fault_spec(spec);
  EXPECT_DOUBLE_EQ(config.drop, 0.05);
  EXPECT_DOUBLE_EQ(config.duplicate, 0.02);
  EXPECT_DOUBLE_EQ(config.reorder, 0.1);
  EXPECT_DOUBLE_EQ(config.corrupt, 0.03);
  EXPECT_EQ(config.seed, 42u);
  ASSERT_EQ(config.kills.size(), 1u);
  EXPECT_EQ(config.kills[0].node, 1u);
  EXPECT_EQ(config.kills[0].interval, 18);
  ASSERT_EQ(config.resets.size(), 1u);
  EXPECT_EQ(config.resets[0].node, 2u);
  EXPECT_EQ(config.resets[0].interval, 9);

  const FaultPlanConfig again = parse_fault_spec(to_string(config));
  EXPECT_EQ(again.drop, config.drop);
  EXPECT_EQ(again.duplicate, config.duplicate);
  EXPECT_EQ(again.reorder, config.reorder);
  EXPECT_EQ(again.corrupt, config.corrupt);
  EXPECT_EQ(again.seed, config.seed);
  ASSERT_EQ(again.kills.size(), config.kills.size());
  EXPECT_EQ(again.kills[0].node, config.kills[0].node);
  EXPECT_EQ(again.kills[0].interval, config.kills[0].interval);
}

TEST(FaultPlan, RegionalNodeSpecsParseAndRenderAsRPrefix) {
  const FaultPlanConfig config = parse_fault_spec("kill=r0@18,kill=r3@25");
  ASSERT_EQ(config.kills.size(), 2u);
  EXPECT_EQ(config.kills[0].node, region_node_id(0));
  EXPECT_EQ(config.kills[0].interval, 18);
  EXPECT_EQ(config.kills[1].node, region_node_id(3));
  EXPECT_EQ(config.kills[1].interval, 25);

  // The rendered spec keeps the "r<idx>" form and round-trips.
  const std::string rendered = to_string(config);
  EXPECT_NE(rendered.find("kill=r0@18"), std::string::npos);
  EXPECT_NE(rendered.find("kill=r3@25"), std::string::npos);
  const FaultPlanConfig again = parse_fault_spec(rendered);
  ASSERT_EQ(again.kills.size(), 2u);
  EXPECT_EQ(again.kills[0].node, config.kills[0].node);
  EXPECT_EQ(again.kills[1].node, config.kills[1].node);

  // A bare 'r' with no index is malformed, as is a non-numeric index.
  EXPECT_THROW((void)parse_fault_spec("kill=r@5"), InputError);
  EXPECT_THROW((void)parse_fault_spec("kill=rx@5"), InputError);
}

TEST(FaultPlan, RepeatedEventKeysAccumulate) {
  const FaultPlanConfig config =
      parse_fault_spec("kill=1@10,kill=2@20,reset=1@5,reset=1@7");
  ASSERT_EQ(config.kills.size(), 2u);
  ASSERT_EQ(config.resets.size(), 2u);

  const FaultPlan plan(config);
  EXPECT_EQ(plan.kill_interval(1).value(), 10);
  EXPECT_EQ(plan.kill_interval(2).value(), 20);
  EXPECT_FALSE(plan.kill_interval(3).has_value());
  EXPECT_TRUE(plan.reset_scheduled(1, 5));
  EXPECT_TRUE(plan.reset_scheduled(1, 7));
  EXPECT_FALSE(plan.reset_scheduled(1, 6));
  EXPECT_FALSE(plan.reset_scheduled(2, 5));
}

TEST(FaultPlan, SameSeedReplaysTheSameDecisionSequence) {
  const FaultPlanConfig config =
      parse_fault_spec("drop=0.3,dup=0.2,reorder=0.4,corrupt=0.1,seed=9");
  FaultPlan a(config);
  FaultPlan b(config);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_drop(), b.next_drop());
    EXPECT_EQ(a.next_duplicate(), b.next_duplicate());
    EXPECT_EQ(a.next_reorder(), b.next_reorder());
    EXPECT_EQ(a.next_corrupt(), b.next_corrupt());
  }
}

TEST(FaultPlan, StreamsAreIndependentAcrossFaultKinds) {
  // Enabling a second fault kind must not shift the first kind's sequence:
  // each kind draws from its own seeded stream.
  FaultPlanConfig drop_only;
  drop_only.drop = 0.5;
  drop_only.seed = 123;
  FaultPlanConfig both = drop_only;
  both.duplicate = 0.5;

  FaultPlan a(drop_only);
  FaultPlan b(both);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.next_drop(), b.next_drop());
    (void)b.next_duplicate();  // interleave; must not disturb the drops
  }
}

TEST(FaultPlan, ProbabilitiesRoughlyMatchOverManyDraws) {
  FaultPlanConfig config;
  config.drop = 0.25;
  config.seed = 7;
  FaultPlan plan(config);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += plan.next_drop() ? 1 : 0;
  const double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW((void)parse_fault_spec("drop"), InputError);
  EXPECT_THROW((void)parse_fault_spec("=0.1"), InputError);
  EXPECT_THROW((void)parse_fault_spec("drop=abc"), InputError);
  EXPECT_THROW((void)parse_fault_spec("drop=-0.1"), InputError);
  // The 0.9 cap keeps every retransmit loop finite.
  EXPECT_THROW((void)parse_fault_spec("drop=0.95"), InputError);
  EXPECT_THROW((void)parse_fault_spec("corrupt=1.0"), InputError);
  EXPECT_THROW((void)parse_fault_spec("lose=0.1"), InputError);
  EXPECT_THROW((void)parse_fault_spec("seed=abc"), InputError);
  EXPECT_THROW((void)parse_fault_spec("kill=1"), InputError);
  EXPECT_THROW((void)parse_fault_spec("kill=@5"), InputError);
  EXPECT_THROW((void)parse_fault_spec("kill=1@"), InputError);
  EXPECT_THROW((void)parse_fault_spec("kill=1@-3"), InputError);
  EXPECT_THROW((void)parse_fault_spec("reset=x@5"), InputError);
  // Node 0 is the NOC itself — a legal kill target, parsed fine here;
  // chaos validation decides which event kinds may address it.
  EXPECT_EQ(parse_fault_spec("kill=0@5").kills.front().node, 0);
}

TEST(FaultPlan, ToleratesEmptySegments) {
  const FaultPlanConfig config = parse_fault_spec(",drop=0.1,,seed=5,");
  EXPECT_DOUBLE_EQ(config.drop, 0.1);
  EXPECT_EQ(config.seed, 5u);
}

}  // namespace
}  // namespace spca
