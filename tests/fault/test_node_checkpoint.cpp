// Durable node state: LocalMonitor and Noc snapshot blobs restore
// bit-identically (including mid-window, with unflushed volume buckets and
// a live model), and malformed blobs are rejected cleanly.
#include <gtest/gtest.h>

#include <cstddef>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "dist/local_monitor.hpp"
#include "dist/noc.hpp"
#include "dist/sim_network.hpp"
#include "net/scenario.hpp"

namespace spca {
namespace {

NetScenarioConfig small_scenario() {
  NetScenarioConfig config;
  config.topology = "diamond";
  config.intervals = 40;
  config.window = 12;
  config.sketch_rows = 8;
  config.monitors = 2;
  config.seed = 7;
  config.anomalies = 3;
  return config;
}

ProjectionSource source_of(const SketchDetectorConfig& det) {
  return det.projection == ProjectionKind::kVerySparse
             ? ProjectionSource::very_sparse(det.seed, det.window)
             : ProjectionSource(det.projection, det.seed, det.sparsity);
}

std::vector<LocalMonitor> build_monitors(const NetScenario& scenario) {
  const SketchDetectorConfig& det = scenario.detector;
  const std::size_t m = scenario.trace.num_flows();
  std::vector<LocalMonitor> monitors;
  for (std::size_t k = 1; k <= scenario.config.monitors; ++k) {
    monitors.emplace_back(
        static_cast<NodeId>(k),
        scenario_flows_of(m, scenario.config.monitors,
                          static_cast<NodeId>(k)),
        det.window, det.epsilon, det.sketch_rows, source_of(det));
  }
  return monitors;
}

/// One lock-step interval of the manual deployment; mirrors what
/// DistributedDetector::observe does.
std::optional<Detection> run_interval(const NetScenario& scenario, Noc& noc,
                                      std::vector<LocalMonitor>& monitors,
                                      SimNetwork& net, std::int64_t t) {
  for (LocalMonitor& monitor : monitors) {
    for (const FlowId flow : monitor.flows()) {
      monitor.ingest_volume(
          flow, scenario.trace.volumes()(static_cast<std::size_t>(t), flow));
    }
    monitor.end_interval(t, net);
  }
  const Vector x = noc.collect_volumes(t, net);
  if (t + 1 < static_cast<std::int64_t>(scenario.detector.window)) {
    return std::nullopt;
  }
  const std::vector<NodeId> ids =
      scenario_monitor_ids(scenario.config.monitors);
  return noc.detect(t, x, ids, net, [&] {
    for (LocalMonitor& monitor : monitors) monitor.handle_mail(net);
  });
}

TEST(NodeCheckpoint, MonitorRestoresMidWindowWithUnflushedVolumes) {
  const NetScenario scenario = build_scenario(small_scenario());
  const SketchDetectorConfig& det = scenario.detector;
  const std::vector<FlowId> flows =
      scenario_flows_of(scenario.trace.num_flows(), 2, 1);
  LocalMonitor monitor(1, flows, det.window, det.epsilon, det.sketch_rows,
                       source_of(det));

  // Flush 20 intervals, then leave half-ingested volumes in the counter —
  // the awkward mid-interval state a snapshot must carry faithfully.
  for (std::int64_t t = 0; t < 20; ++t) {
    for (const FlowId flow : flows) {
      monitor.ingest_volume(
          flow, scenario.trace.volumes()(static_cast<std::size_t>(t), flow));
    }
    monitor.absorb_interval(t);
  }
  for (const FlowId flow : flows) monitor.ingest_volume(flow, 123.5);

  LocalMonitor restored = LocalMonitor::restore_state(monitor.save_state());
  EXPECT_EQ(restored.id(), monitor.id());
  EXPECT_EQ(restored.flows(), monitor.flows());

  // Both finish interval 20 and answer a sketch pull: reports and
  // responses must agree bit for bit.
  SimNetwork net_a;
  SimNetwork net_b;
  monitor.end_interval(20, net_a);
  restored.end_interval(20, net_b);
  Message request;
  request.type = MessageType::kSketchRequest;
  request.from = kNocId;
  request.to = 1;
  request.interval = 20;
  monitor.handle_request(request, net_a);
  restored.handle_request(request, net_b);

  const std::vector<Message> mail_a = net_a.drain(kNocId);
  const std::vector<Message> mail_b = net_b.drain(kNocId);
  ASSERT_EQ(mail_a.size(), 2u);
  ASSERT_EQ(mail_b.size(), 2u);
  for (std::size_t i = 0; i < mail_a.size(); ++i) {
    EXPECT_EQ(mail_a[i].ids, mail_b[i].ids);
    ASSERT_EQ(mail_a[i].values.size(), mail_b[i].values.size());
    for (std::size_t j = 0; j < mail_a[i].values.size(); ++j) {
      EXPECT_EQ(mail_a[i].values[j], mail_b[i].values[j])
          << "message " << i << " value " << j;
    }
  }
}

TEST(NodeCheckpoint, DeploymentSnapshotMidRunContinuesBitIdentically) {
  const NetScenario scenario = build_scenario(small_scenario());
  const auto intervals = static_cast<std::int64_t>(scenario.config.intervals);
  const std::int64_t snap_at = 25;  // past warm-up, with a fitted model

  // Reference: one uninterrupted run.
  std::vector<double> ref_distances;
  std::vector<std::int64_t> ref_alarms;
  {
    SimNetwork net;
    Noc noc(scenario.trace.num_flows(),
            noc_config_from(scenario.detector, /*host_sketches=*/false));
    std::vector<LocalMonitor> monitors = build_monitors(scenario);
    for (std::int64_t t = 0; t < intervals; ++t) {
      const auto det = run_interval(scenario, noc, monitors, net, t);
      if (!det) continue;
      ref_distances.push_back(det->distance);
      if (det->alarm) ref_alarms.push_back(t);
    }
  }

  // Snapshot the whole deployment after interval snap_at - 1, restore every
  // node from its blob, and continue with the clones only.
  std::vector<double> distances;
  std::vector<std::int64_t> alarms;
  {
    SimNetwork net;
    Noc noc(scenario.trace.num_flows(),
            noc_config_from(scenario.detector, /*host_sketches=*/false));
    std::vector<LocalMonitor> monitors = build_monitors(scenario);
    for (std::int64_t t = 0; t < snap_at; ++t) {
      const auto det = run_interval(scenario, noc, monitors, net, t);
      if (!det) continue;
      distances.push_back(det->distance);
      if (det->alarm) alarms.push_back(t);
    }

    Noc restored_noc = Noc::restore_state(noc.save_state());
    EXPECT_EQ(restored_noc.sketch_pulls(), noc.sketch_pulls());
    std::vector<LocalMonitor> restored_monitors;
    for (const LocalMonitor& monitor : monitors) {
      restored_monitors.push_back(
          LocalMonitor::restore_state(monitor.save_state()));
    }
    SimNetwork fresh_net;
    for (std::int64_t t = snap_at; t < intervals; ++t) {
      const auto det = run_interval(scenario, restored_noc,
                                    restored_monitors, fresh_net, t);
      if (!det) continue;
      distances.push_back(det->distance);
      if (det->alarm) alarms.push_back(t);
    }
  }

  EXPECT_EQ(alarms, ref_alarms);
  ASSERT_EQ(distances.size(), ref_distances.size());
  for (std::size_t i = 0; i < ref_distances.size(); ++i) {
    EXPECT_EQ(distances[i], ref_distances[i]) << "detection index " << i;
  }
}

class NodeCheckpointBackend
    : public ::testing::TestWithParam<ModelBackendKind> {};

TEST_P(NodeCheckpointBackend, DeploymentSnapshotContinuesBitIdentically) {
  // Same shape as the exact-path snapshot test above, but per model
  // backend: whatever inter-refit state the backend carries (warm basis,
  // rsvd refit counter, fd sketch) must survive the round trip so the
  // continued run stays bit-identical.
  NetScenarioConfig scenario_config = small_scenario();
  scenario_config.model_backend = to_string(GetParam());
  const NetScenario scenario = build_scenario(scenario_config);
  const auto intervals = static_cast<std::int64_t>(scenario.config.intervals);
  const std::int64_t snap_at = 25;

  std::vector<double> ref_distances;
  std::vector<std::int64_t> ref_alarms;
  {
    SimNetwork net;
    Noc noc(scenario.trace.num_flows(),
            noc_config_from(scenario.detector, /*host_sketches=*/false));
    std::vector<LocalMonitor> monitors = build_monitors(scenario);
    for (std::int64_t t = 0; t < intervals; ++t) {
      const auto det = run_interval(scenario, noc, monitors, net, t);
      if (!det) continue;
      ref_distances.push_back(det->distance);
      if (det->alarm) ref_alarms.push_back(t);
    }
  }

  std::vector<double> distances;
  std::vector<std::int64_t> alarms;
  {
    SimNetwork net;
    Noc noc(scenario.trace.num_flows(),
            noc_config_from(scenario.detector, /*host_sketches=*/false));
    std::vector<LocalMonitor> monitors = build_monitors(scenario);
    for (std::int64_t t = 0; t < snap_at; ++t) {
      const auto det = run_interval(scenario, noc, monitors, net, t);
      if (!det) continue;
      distances.push_back(det->distance);
      if (det->alarm) alarms.push_back(t);
    }

    Noc restored_noc = Noc::restore_state(noc.save_state(), GetParam());
    EXPECT_EQ(restored_noc.backend().kind(), GetParam());
    std::vector<LocalMonitor> restored_monitors;
    for (const LocalMonitor& monitor : monitors) {
      restored_monitors.push_back(
          LocalMonitor::restore_state(monitor.save_state()));
    }
    SimNetwork fresh_net;
    for (std::int64_t t = snap_at; t < intervals; ++t) {
      const auto det = run_interval(scenario, restored_noc,
                                    restored_monitors, fresh_net, t);
      if (!det) continue;
      distances.push_back(det->distance);
      if (det->alarm) alarms.push_back(t);
    }
  }

  EXPECT_EQ(alarms, ref_alarms);
  ASSERT_EQ(distances.size(), ref_distances.size());
  for (std::size_t i = 0; i < ref_distances.size(); ++i) {
    EXPECT_EQ(distances[i], ref_distances[i]) << "detection index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, NodeCheckpointBackend,
                         ::testing::Values(ModelBackendKind::kExact,
                                           ModelBackendKind::kWarm,
                                           ModelBackendKind::kRsvd,
                                           ModelBackendKind::kFd),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(NodeCheckpoint, CrossBackendRestoreIsRejected) {
  // A blob written under one backend must never be absorbed by a node
  // configured for another: the inter-refit state is kind-specific, and a
  // silent mismatch would corrupt the trajectory instead of failing fast.
  NetScenarioConfig scenario_config = small_scenario();
  scenario_config.model_backend = "warm";
  const NetScenario scenario = build_scenario(scenario_config);
  SimNetwork net;
  Noc noc(scenario.trace.num_flows(),
          noc_config_from(scenario.detector, /*host_sketches=*/false));
  std::vector<LocalMonitor> monitors = build_monitors(scenario);
  for (std::int64_t t = 0; t < 20; ++t) {
    (void)run_interval(scenario, noc, monitors, net, t);
  }
  const std::vector<std::byte> blob = noc.save_state();

  // Matching expectation restores fine; every other kind is rejected.
  EXPECT_NO_THROW((void)Noc::restore_state(blob, ModelBackendKind::kWarm));
  EXPECT_NO_THROW((void)Noc::restore_state(blob));
  for (const ModelBackendKind other :
       {ModelBackendKind::kExact, ModelBackendKind::kRsvd,
        ModelBackendKind::kFd}) {
    EXPECT_THROW((void)Noc::restore_state(blob, other), ProtocolError)
        << to_string(other);
  }
}

TEST(NodeCheckpoint, MonitorBlobCorruptionIsRejectedCleanly) {
  const NetScenario scenario = build_scenario(small_scenario());
  const SketchDetectorConfig& det = scenario.detector;
  const std::vector<FlowId> flows =
      scenario_flows_of(scenario.trace.num_flows(), 2, 1);
  LocalMonitor monitor(1, flows, det.window, det.epsilon, det.sketch_rows,
                       source_of(det));
  for (std::int64_t t = 0; t < 8; ++t) {
    for (const FlowId flow : flows) monitor.ingest_volume(flow, 10.0 + t);
    monitor.absorb_interval(t);
  }
  const std::vector<std::byte> blob = monitor.save_state();

  // Wrong magic.
  std::vector<std::byte> bad_magic = blob;
  bad_magic[0] = static_cast<std::byte>(0xFF);
  EXPECT_THROW((void)LocalMonitor::restore_state(bad_magic), ProtocolError);

  // Wrong version.
  std::vector<std::byte> bad_version = blob;
  bad_version[4] = static_cast<std::byte>(0x7F);
  EXPECT_THROW((void)LocalMonitor::restore_state(bad_version),
               ProtocolError);

  // Trailing garbage.
  std::vector<std::byte> padded = blob;
  padded.push_back(std::byte{0});
  EXPECT_THROW((void)LocalMonitor::restore_state(padded), ProtocolError);

  // Truncation at every prefix length must throw, never crash or hang
  // (run under ASan/UBSan in CI).
  for (std::size_t len = 0; len < blob.size();
       len += (len < 64 ? 1 : 97)) {
    const std::vector<std::byte> truncated(blob.begin(),
                                           blob.begin() +
                                               static_cast<std::ptrdiff_t>(
                                                   len));
    EXPECT_THROW((void)LocalMonitor::restore_state(truncated), ProtocolError)
        << "length " << len;
  }
}

TEST(NodeCheckpoint, NocBlobCorruptionIsRejectedCleanly) {
  const NetScenario scenario = build_scenario(small_scenario());
  SimNetwork net;
  Noc noc(scenario.trace.num_flows(),
          noc_config_from(scenario.detector, /*host_sketches=*/false));
  std::vector<LocalMonitor> monitors = build_monitors(scenario);
  for (std::int64_t t = 0; t < 20; ++t) {
    (void)run_interval(scenario, noc, monitors, net, t);
  }
  ASSERT_TRUE(noc.model().has_value());
  const std::vector<std::byte> blob = noc.save_state();

  std::vector<std::byte> bad_magic = blob;
  bad_magic[0] = static_cast<std::byte>(0xFF);
  EXPECT_THROW((void)Noc::restore_state(bad_magic), ProtocolError);

  std::vector<std::byte> padded = blob;
  padded.push_back(std::byte{0});
  EXPECT_THROW((void)Noc::restore_state(padded), ProtocolError);

  for (std::size_t len = 0; len < blob.size();
       len += (len < 64 ? 1 : 211)) {
    const std::vector<std::byte> truncated(blob.begin(),
                                           blob.begin() +
                                               static_cast<std::ptrdiff_t>(
                                                   len));
    EXPECT_THROW((void)Noc::restore_state(truncated), ProtocolError)
        << "length " << len;
  }
}

}  // namespace
}  // namespace spca
