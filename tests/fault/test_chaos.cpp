// Chaos harness end-to-end: scripted fault schedules against both the
// simulated and the real TCP deployment must leave the detection trajectory
// bit-identical to the fault-free reference, and hostile bytes on the wire
// must never take a daemon down.
#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <exception>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "fault/chaos.hpp"
#include "net/frame.hpp"
#include "net/monitor_daemon.hpp"
#include "net/noc_daemon.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"

namespace spca {
namespace {

using namespace std::chrono_literals;

namespace fs = std::filesystem;

class TempDir final {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = fs::temp_directory_path() /
            ("spca-chaos-" + tag + "-" + std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

NetScenarioConfig small_scenario() {
  NetScenarioConfig config;
  config.topology = "diamond";
  config.intervals = 40;
  config.window = 12;
  config.sketch_rows = 8;
  config.monitors = 2;
  config.seed = 7;
  config.anomalies = 3;
  return config;
}

RetryPolicy fast_retry() {
  RetryPolicy retry;
  retry.max_attempts = 400;
  retry.connect_timeout = 1000ms;
  retry.backoff_initial = 5ms;
  retry.backoff_max = 50ms;
  return retry;
}

ChaosConfig base_config() {
  ChaosConfig config;
  config.scenario = small_scenario();
  config.retry = fast_retry();
  config.io_timeout = 20000ms;
  config.interval_deadline = 30000ms;
  return config;
}

TEST(Chaos, SimModeMasksHeavyMessageFaults) {
  ChaosConfig config = base_config();
  config.faults =
      parse_fault_spec("drop=0.25,dup=0.15,reorder=0.25,corrupt=0.15,seed=3");
  const ChaosResult result = run_chaos(config);
  EXPECT_TRUE(result.match);
  EXPECT_GT(result.faults.drops, 0u);
  EXPECT_GT(result.faults.corruptions, 0u);
  EXPECT_GT(result.faults.duplicates, 0u);
  EXPECT_GT(result.faults.reorders, 0u);
  EXPECT_EQ(result.faults.retransmits,
            result.faults.drops + result.faults.corruptions);
  EXPECT_EQ(result.faults.deduplicated, result.faults.duplicates);
}

TEST(Chaos, ValidationRejectsInfeasibleSchedules) {
  {
    ChaosConfig config = base_config();  // sim mode
    config.faults = parse_fault_spec("kill=1@18");
    EXPECT_THROW((void)run_chaos(config), InputError);
  }
  {
    ChaosConfig config = base_config();
    config.tcp = true;  // kills without a checkpoint directory
    config.faults = parse_fault_spec("kill=1@18");
    EXPECT_THROW((void)run_chaos(config), InputError);
  }
  {
    ChaosConfig config = base_config();
    config.tcp = true;
    config.checkpoint_dir = "/tmp/never-created";
    config.faults = parse_fault_spec("kill=9@18");  // unknown monitor
    EXPECT_THROW((void)run_chaos(config), InputError);
  }
  {
    ChaosConfig config = base_config();
    config.tcp = true;
    config.faults = parse_fault_spec("reset=1@100");  // past scenario end
    EXPECT_THROW((void)run_chaos(config), InputError);
  }
  {
    ChaosConfig config = base_config();
    config.tcp = true;
    config.checkpoint_dir = "/tmp/never-created";
    config.crash_kills = true;  // NOC kills must be clean
    config.faults = parse_fault_spec("kill=0@18");
    EXPECT_THROW((void)run_chaos(config), InputError);
  }
}

TEST(Chaos, ValidationRejectsInfeasibleHierarchicalSchedules) {
  {
    ChaosConfig config = base_config();
    config.tcp = true;
    config.checkpoint_dir = "/tmp/never-created";
    // Region kills need a hierarchical deployment.
    config.faults = parse_fault_spec("kill=r0@18");
    EXPECT_THROW((void)run_chaos(config), InputError);
  }
  {
    ChaosConfig config = base_config();
    config.tcp = true;
    config.regions = 2;
    config.checkpoint_dir = "/tmp/never-created";
    // Only regions 0..regions-1 exist.
    config.faults = parse_fault_spec("kill=r2@18");
    EXPECT_THROW((void)run_chaos(config), InputError);
  }
  {
    ChaosConfig config = base_config();
    config.tcp = true;
    config.regions = 2;
    config.checkpoint_dir = "/tmp/never-created";
    // The root NOC cannot be killed in hierarchical mode: the regiond tier
    // never re-sends an aggregate it already forwarded.
    config.faults = parse_fault_spec("kill=0@18");
    EXPECT_THROW((void)run_chaos(config), InputError);
  }
  {
    ChaosConfig config = base_config();
    config.regions = 2;  // hierarchy requires real daemons
    EXPECT_THROW((void)run_chaos(config), InputError);
  }
  {
    ChaosConfig config = base_config();
    config.tcp = true;
    config.regions = 4;  // more regions than the 2 monitors
    EXPECT_THROW((void)run_chaos(config), InputError);
  }
}

TEST(Chaos, HierRegionalKillRestartsFromSpcrSnapshot) {
  // Kill regional NOC 0 of a 2-region / 4-monitor hierarchy mid-run. The
  // reborn regiond restores its SPCR progress snapshot on the same port,
  // the shard's monitors redial and re-send, and the root never notices:
  // the trajectory stays bit-identical to the fault-free flat reference.
  const TempDir dir("hierkill");
  ChaosConfig config = base_config();
  config.scenario.monitors = 4;
  config.tcp = true;
  config.regions = 2;
  config.checkpoint_dir = dir.str();
  config.checkpoint_every = 4;
  config.faults = parse_fault_spec("kill=r0@18,seed=3");
  const ChaosResult result = run_chaos(config);
  EXPECT_TRUE(result.match);
  EXPECT_EQ(result.kills, 1u);
  EXPECT_TRUE(result.restored_from_checkpoint);
}

TEST(Chaos, HierCrashKillWithMonitorFaultsStaysBitIdentical) {
  // Crash-kill (no shutdown snapshot) a regional NOC while the monitor
  // endpoints are also dropping and reordering messages. The regiond tier
  // is stateless beyond its progress cursor, so a periodic SPCR snapshot
  // plus the monitors' resend-on-reconnect absorbs everything.
  const TempDir dir("hiercrash");
  ChaosConfig config = base_config();
  config.scenario.monitors = 4;
  config.tcp = true;
  config.regions = 2;
  config.checkpoint_dir = dir.str();
  config.checkpoint_every = 4;
  config.crash_kills = true;
  config.faults =
      parse_fault_spec("drop=0.15,dup=0.1,reorder=0.1,kill=r1@21,seed=4");
  const ChaosResult result = run_chaos(config);
  EXPECT_TRUE(result.match);
  EXPECT_EQ(result.kills, 1u);
  EXPECT_TRUE(result.restored_from_checkpoint);
  EXPECT_GT(result.faults.drops, 0u);
  EXPECT_GT(result.faults.duplicates, 0u);
}

TEST(Chaos, HierRegionRootHopFaultsWithFusionStayBitIdentical) {
  // Message faults now ride every tier, including the region -> root hop:
  // the regiond and root transports are both fault-wrapped since the dedup
  // key gained its payload-width element. With fusion on, three aggregate
  // shapes share that hop each interval — volume (1 value/id), score (2)
  // and sketch (rows + 2) — so duplicates of one shape must not swallow a
  // legitimate message of another. The fused trajectory is compared too.
  ChaosConfig config = base_config();
  config.scenario.monitors = 4;
  config.scenario.fusion = "any";
  config.tcp = true;
  config.regions = 2;
  config.faults =
      parse_fault_spec("drop=0.1,dup=0.15,reorder=0.1,corrupt=0.1,seed=11");
  const ChaosResult result = run_chaos(config);
  EXPECT_TRUE(result.match);
  EXPECT_GT(result.faults.duplicates, 0u);
  EXPECT_GT(result.faults.deduplicated, 0u);
  EXPECT_FALSE(result.reference.fused_statistics.empty());
}

TEST(Chaos, TcpKillRestartsFromShutdownCheckpoint) {
  const TempDir dir("cleankill");
  ChaosConfig config = base_config();
  config.tcp = true;
  config.checkpoint_dir = dir.str();
  config.checkpoint_every = 6;
  config.faults = parse_fault_spec("drop=0.05,reorder=0.05,kill=1@18,seed=5");
  const ChaosResult result = run_chaos(config);
  EXPECT_TRUE(result.match);
  EXPECT_EQ(result.kills, 1u);
  // The reborn monitor restored the shutdown snapshot instead of replaying.
  EXPECT_TRUE(result.restored_from_checkpoint);
}

TEST(Chaos, TcpCrashKillRestoresPeriodicSnapshotAndAbsorbsTail) {
  const TempDir dir("crashkill");
  ChaosConfig config = base_config();
  config.tcp = true;
  config.checkpoint_dir = dir.str();
  config.checkpoint_every = 6;
  config.crash_kills = true;  // no shutdown snapshot: restore 18, absorb 3
  config.faults = parse_fault_spec("kill=2@21,seed=6");
  const ChaosResult result = run_chaos(config);
  EXPECT_TRUE(result.match);
  EXPECT_EQ(result.kills, 1u);
  EXPECT_TRUE(result.restored_from_checkpoint);
}

TEST(Chaos, TcpNocKillUnderWarmBackendReconverges) {
  // Kill the NOC itself mid-run while it runs the default warm backend —
  // past the window, in the regime where anomalies trigger drift-driven
  // cold restarts — and restore it from its checkpoint. The stitched
  // trajectory must be bit-identical to the fault-free reference: the warm
  // basis and drift bookkeeping ride in the snapshot, and the monitors
  // re-send their pending reports to the reborn NOC.
  const TempDir dir("nockill");
  ChaosConfig config = base_config();
  config.tcp = true;
  config.checkpoint_dir = dir.str();
  config.checkpoint_every = 6;
  config.scenario.model_backend = "warm";
  config.faults = parse_fault_spec("kill=0@20,seed=9");
  const ChaosResult result = run_chaos(config);
  EXPECT_TRUE(result.match);
  EXPECT_EQ(result.kills, 1u);
  EXPECT_TRUE(result.restored_from_checkpoint);
}

TEST(Chaos, TcpConnectionResetsAreSurvivedWithoutDivergence) {
  ChaosConfig config = base_config();
  config.tcp = true;
  config.faults =
      parse_fault_spec("drop=0.05,dup=0.05,reset=1@20,reset=2@25,seed=8");
  const ChaosResult result = run_chaos(config);
  EXPECT_TRUE(result.match);
  EXPECT_EQ(result.resets, 2u);
  EXPECT_GE(result.monitor_reconnects, 2u);
}

/// Sends raw bytes to the daemon's listen port on a throwaway connection.
void send_rogue_bytes(std::uint16_t port, const std::vector<std::byte>& bytes) {
  TcpStream rogue = TcpStream::connect("127.0.0.1", port, 2000ms);
  if (!bytes.empty()) rogue.send_all(bytes.data(), bytes.size(), 2000ms);
  rogue.shutdown_send();
  // Give the reader a moment to parse and reject before we disappear.
  std::array<std::byte, 16> sink;
  (void)rogue.recv_some(sink.data(), sink.size(), 200ms);
}

std::vector<std::byte> ascii_bytes(const std::string& text) {
  std::vector<std::byte> out(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    out[i] = static_cast<std::byte>(text[i]);
  }
  return out;
}

TEST(Chaos, RogueAndCorruptConnectionsNeverCrashTheNocDaemon) {
  const NetScenarioConfig config = small_scenario();
  const NetScenario scenario = build_scenario(config);
  const ScenarioRun reference = run_scenario_reference(scenario);
  Counter& frame_errors =
      MetricsRegistry::global().counter("spca.net.frame_errors");
  const std::uint64_t errors_before = frame_errors.value();

  NocDaemonConfig noc_config;
  noc_config.scenario = config;
  noc_config.listen_port = 0;
  noc_config.interval_deadline = 30000ms;
  NocDaemon noc(noc_config);
  noc.start();
  const std::uint16_t port = noc.bound_port();

  // Hostile peers, before the real monitors show up: wrong protocol
  // entirely, a valid hello followed by a CRC-corrupted frame, a truncated
  // frame, an unknown frame type, and a silent connect-and-vanish.
  send_rogue_bytes(port, ascii_bytes("GET / HTTP/1.1\r\nHost: noc\r\n\r\n"));
  {
    std::vector<std::byte> hello_payload(4);
    hello_payload[0] = std::byte{99};  // NodeId 99: not part of the protocol
    std::vector<std::byte> bytes =
        encode_frame(FrameType::kHello, hello_payload);
    std::vector<std::byte> corrupt =
        encode_frame(FrameType::kMessage, ascii_bytes("payload"));
    corrupt[kFrameHeaderBytes] ^= std::byte{0x40};  // breaks the CRC
    bytes.insert(bytes.end(), corrupt.begin(), corrupt.end());
    send_rogue_bytes(port, bytes);
  }
  {
    std::vector<std::byte> truncated =
        encode_frame(FrameType::kMessage, ascii_bytes("half a frame"));
    truncated.resize(truncated.size() / 2);
    send_rogue_bytes(port, truncated);
  }
  {
    std::vector<std::byte> unknown = encode_frame(FrameType::kHello, {});
    unknown[5] = std::byte{0x7E};  // type nobody knows
    send_rogue_bytes(port, unknown);
  }
  send_rogue_bytes(port, {});

  // The deployment still runs to a bit-identical trajectory.
  std::vector<std::thread> threads;
  std::vector<MonitorDaemonResult> results(config.monitors);
  std::vector<std::exception_ptr> errors(config.monitors);
  for (std::size_t k = 0; k < config.monitors; ++k) {
    threads.emplace_back([&, k] {
      try {
        MonitorDaemonConfig mc;
        mc.scenario = config;
        mc.monitor_id = static_cast<NodeId>(k + 1);
        mc.noc_port = port;
        mc.retry = fast_retry();
        mc.io_timeout = 20000ms;
        MonitorDaemon daemon(mc);
        results[k] = daemon.run();
      } catch (...) {
        errors[k] = std::current_exception();
      }
    });
  }
  // One more hostile burst while the run is in flight.
  send_rogue_bytes(port, ascii_bytes("\x01\x02\x03\x04garbage mid-run"));

  const ScenarioRun run = noc.run();
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  EXPECT_EQ(run.alarm_intervals, reference.alarm_intervals);
  ASSERT_EQ(run.distances.size(), reference.distances.size());
  for (std::size_t i = 0; i < reference.distances.size(); ++i) {
    EXPECT_EQ(run.distances[i], reference.distances[i]) << "index " << i;
  }
  // The hostile frames were detected and counted, not absorbed silently.
  EXPECT_GE(frame_errors.value() - errors_before, 3u);
}

}  // namespace
}  // namespace spca
