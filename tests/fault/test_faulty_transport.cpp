// FaultyTransport: the fault -> recovery pairings in isolation, and the
// headline invariant — a full simulated deployment over a heavily faulted
// channel reproduces the fault-free trajectory bit for bit.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dist/sim_network.hpp"
#include "fault/fault_plan.hpp"
#include "fault/faulty_transport.hpp"
#include "net/scenario.hpp"

namespace spca {
namespace {

Message message_for(NodeId from, NodeId to, std::int64_t interval,
                    MessageType type = MessageType::kVolumeReport) {
  Message msg;
  msg.type = type;
  msg.from = from;
  msg.to = to;
  msg.interval = interval;
  msg.ids = {1, 2};
  msg.values = {1.5, 2.5};
  return msg;
}

TEST(FaultyTransport, NoFaultsIsATransparentPassThrough) {
  SimNetwork sim;
  FaultyTransport faulty(sim, FaultPlanConfig{});
  faulty.send(message_for(1, kNocId, 0));
  faulty.send(message_for(2, kNocId, 0));

  EXPECT_TRUE(faulty.has_mail(kNocId));
  const std::vector<Message> mail = faulty.drain(kNocId);
  ASSERT_EQ(mail.size(), 2u);
  EXPECT_EQ(mail[0].from, 1u);
  EXPECT_EQ(mail[1].from, 2u);

  const FaultInjectionStats stats = faulty.fault_stats();
  EXPECT_EQ(stats.drops, 0u);
  EXPECT_EQ(stats.duplicates, 0u);
  EXPECT_EQ(stats.reorders, 0u);
  EXPECT_EQ(stats.retransmits, 0u);
}

TEST(FaultyTransport, DropsAndCorruptionsAreMaskedByRetransmission) {
  SimNetwork sim;
  FaultPlanConfig plan;
  plan.drop = 0.5;
  plan.corrupt = 0.3;
  plan.seed = 4;
  FaultyTransport faulty(sim, plan);

  for (std::int64_t t = 0; t < 50; ++t) {
    faulty.send(message_for(1, kNocId, t));
  }
  // Every message arrives exactly once despite the injected losses.
  const std::vector<Message> mail = faulty.drain(kNocId);
  ASSERT_EQ(mail.size(), 50u);
  for (std::int64_t t = 0; t < 50; ++t) EXPECT_EQ(mail[t].interval, t);

  const FaultInjectionStats stats = faulty.fault_stats();
  EXPECT_GT(stats.drops + stats.corruptions, 0u);
  EXPECT_EQ(stats.retransmits, stats.drops + stats.corruptions);
}

TEST(FaultyTransport, DuplicatesAreRemovedOnTheReceiveSide) {
  SimNetwork sim;
  FaultPlanConfig plan;
  plan.duplicate = 0.9;
  plan.seed = 5;
  FaultyTransport faulty(sim, plan);

  for (std::int64_t t = 0; t < 30; ++t) {
    faulty.send(message_for(1, kNocId, t));
  }
  const std::vector<Message> mail = faulty.drain(kNocId);
  ASSERT_EQ(mail.size(), 30u);
  for (std::int64_t t = 0; t < 30; ++t) EXPECT_EQ(mail[t].interval, t);

  const FaultInjectionStats stats = faulty.fault_stats();
  EXPECT_GT(stats.duplicates, 0u);
  EXPECT_EQ(stats.deduplicated, stats.duplicates);
}

TEST(FaultyTransport, DistinctMessagesWithSharedKeyPartsAreNotDeduplicated) {
  SimNetwork sim;
  FaultPlanConfig plan;  // no faults: dedup must never eat legitimate mail
  FaultyTransport faulty(sim, plan);

  // Same (from, to, interval) but different types, and same type across
  // intervals/senders: all legitimate, all must be delivered.
  faulty.send(message_for(1, kNocId, 7, MessageType::kVolumeReport));
  faulty.send(message_for(1, kNocId, 7, MessageType::kSketchResponse));
  faulty.send(message_for(2, kNocId, 7, MessageType::kVolumeReport));
  faulty.send(message_for(1, kNocId, 8, MessageType::kVolumeReport));
  EXPECT_EQ(faulty.drain(kNocId).size(), 4u);
}

TEST(FaultyTransport, ReorderedMessagesAreReleasedByTheNextReceiveOp) {
  SimNetwork sim;
  FaultPlanConfig plan;
  plan.reorder = 0.9;
  plan.seed = 6;
  FaultyTransport faulty(sim, plan);

  for (std::int64_t t = 0; t < 20; ++t) {
    faulty.send(message_for(1, kNocId, t));
  }
  const FaultInjectionStats before = faulty.fault_stats();
  EXPECT_GT(before.reorders, 0u);

  // Nothing is lost: a drain releases every held message.
  std::vector<Message> mail = faulty.drain(kNocId);
  std::vector<Message> more = faulty.drain(kNocId);
  EXPECT_EQ(mail.size() + more.size(), 20u);
}

TEST(FaultyTransport, TakeFiltersByTypeAcrossHeldMessages) {
  SimNetwork sim;
  FaultPlanConfig plan;
  plan.reorder = 0.9;
  plan.seed = 8;
  FaultyTransport faulty(sim, plan);

  faulty.send(message_for(1, kNocId, 3, MessageType::kVolumeReport));
  faulty.send(message_for(1, kNocId, 3, MessageType::kSketchResponse));
  faulty.send(message_for(2, kNocId, 3, MessageType::kVolumeReport));

  const std::vector<Message> reports =
      faulty.take(kNocId, MessageType::kVolumeReport);
  EXPECT_EQ(reports.size(), 2u);
  const std::vector<Message> responses =
      faulty.take(kNocId, MessageType::kSketchResponse);
  EXPECT_EQ(responses.size(), 1u);
}

TEST(FaultyTransport, StatsAccumulatorCollectsAcrossDecoratorLifetimes) {
  SimNetwork sim;
  FaultStatsAccumulator acc;
  FaultPlanConfig plan;
  plan.duplicate = 0.9;
  plan.seed = 9;
  for (int incarnation = 0; incarnation < 2; ++incarnation) {
    FaultyTransport faulty(sim, plan, &acc);
    for (std::int64_t t = 0; t < 10; ++t) {
      faulty.send(message_for(1, kNocId, 100 * incarnation + t));
    }
    (void)faulty.drain(kNocId);
  }
  const FaultInjectionStats total = acc.total();
  EXPECT_GT(total.duplicates, 0u);
  EXPECT_EQ(total.deduplicated, total.duplicates);
}

TEST(FaultyTransport, HeavilyFaultedDeploymentMatchesReferenceBitForBit) {
  NetScenarioConfig config;
  config.topology = "diamond";
  config.intervals = 40;
  config.window = 12;
  config.sketch_rows = 8;
  config.monitors = 2;
  config.seed = 7;
  config.anomalies = 3;
  const NetScenario scenario = build_scenario(config);
  const ScenarioRun reference = run_scenario_reference(scenario);

  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    SimNetwork sim;
    FaultPlanConfig plan;
    plan.drop = 0.3;
    plan.duplicate = 0.2;
    plan.reorder = 0.3;
    plan.corrupt = 0.2;
    plan.seed = seed;
    FaultyTransport faulty(sim, plan);
    const ScenarioRun run = run_scenario_reference(scenario, &faulty);

    EXPECT_EQ(run.alarm_intervals, reference.alarm_intervals) << "seed "
                                                              << seed;
    ASSERT_EQ(run.distances.size(), reference.distances.size());
    for (std::size_t i = 0; i < reference.distances.size(); ++i) {
      EXPECT_EQ(run.distances[i], reference.distances[i])
          << "seed " << seed << " interval index " << i;
    }
    const FaultInjectionStats stats = faulty.fault_stats();
    EXPECT_GT(stats.drops, 0u) << "seed " << seed;
    EXPECT_GT(stats.duplicates, 0u) << "seed " << seed;
    EXPECT_GT(stats.reorders, 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace spca
