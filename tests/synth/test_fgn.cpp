#include "synth/fgn.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "linalg/stats.hpp"

namespace spca {
namespace {

double sample_autocovariance(const std::vector<double>& xs, std::size_t lag) {
  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double sum = 0.0;
  for (std::size_t i = 0; i + lag < xs.size(); ++i) {
    sum += (xs[i] - mean) * (xs[i + lag] - mean);
  }
  return sum / static_cast<double>(xs.size() - lag);
}

TEST(FgnAutocovariance, LagZeroIsUnitVariance) {
  for (const double h : {0.5, 0.7, 0.9}) {
    EXPECT_DOUBLE_EQ(fgn_autocovariance(0, h), 1.0);
  }
}

TEST(FgnAutocovariance, HalfHurstIsWhiteNoise) {
  // H = 0.5 reduces fGn to i.i.d. Gaussian noise: zero covariance at lags.
  for (std::size_t lag = 1; lag < 10; ++lag) {
    EXPECT_NEAR(fgn_autocovariance(lag, 0.5), 0.0, 1e-12);
  }
}

TEST(FgnAutocovariance, PositiveAndSlowlyDecayingForHighHurst) {
  double prev = fgn_autocovariance(1, 0.85);
  EXPECT_GT(prev, 0.0);
  for (std::size_t lag = 2; lag < 50; ++lag) {
    const double cur = fgn_autocovariance(lag, 0.85);
    EXPECT_GT(cur, 0.0);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(FgnDaviesHarte, DeterministicInSeed) {
  const auto a = fgn_davies_harte(64, 0.8, 5);
  const auto b = fgn_davies_harte(64, 0.8, 5);
  const auto c = fgn_davies_harte(64, 0.8, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

class FgnHurstTest : public ::testing::TestWithParam<double> {};

TEST_P(FgnHurstTest, UnitVarianceAndZeroMean) {
  const double hurst = GetParam();
  constexpr std::size_t kLen = 4096;
  constexpr std::uint64_t kSeries = 8;
  // For LRD series the per-series sample mean has std ~ n^{H-1}, and the
  // per-series sample variance is biased low by the same n^{2H-2} term —
  // both effects are large for high Hurst and must be accounted for, not
  // hidden by loose tolerances.
  RunningStats per_series_mean;
  double variance_sum = 0.0;
  for (std::uint64_t seed = 0; seed < kSeries; ++seed) {
    RunningStats series;
    for (const double x : fgn_davies_harte(kLen, hurst, seed)) {
      series.add(x);
    }
    per_series_mean.add(series.mean());
    variance_sum += series.variance_population();
  }
  const double mean_std =
      std::pow(static_cast<double>(kLen), hurst - 1.0) /
      std::sqrt(static_cast<double>(kSeries));
  EXPECT_NEAR(per_series_mean.mean(), 0.0, 4.0 * mean_std + 0.01);
  const double variance_bias =
      std::pow(static_cast<double>(kLen), 2.0 * hurst - 2.0);
  EXPECT_NEAR(variance_sum / static_cast<double>(kSeries),
              1.0 - variance_bias, 0.12);
}

TEST_P(FgnHurstTest, Lag1AutocovarianceMatchesTheory) {
  const double hurst = GetParam();
  constexpr std::size_t kLen = 4096;
  double acc = 0.0;
  constexpr int kSeries = 12;
  for (int s = 0; s < kSeries; ++s) {
    const auto xs = fgn_davies_harte(kLen, hurst, 100 + s);
    acc += sample_autocovariance(xs, 1);
  }
  // Subtracting the sample mean biases the LRD autocovariance estimator by
  // approximately -Var(sample mean) = -n^{2H-2} (Hosking 1996).
  const double expected = fgn_autocovariance(1, hurst) -
                          std::pow(static_cast<double>(kLen),
                                   2.0 * hurst - 2.0);
  EXPECT_NEAR(acc / kSeries, expected, 0.08);
}

INSTANTIATE_TEST_SUITE_P(HurstValues, FgnHurstTest,
                         ::testing::Values(0.5, 0.6, 0.75, 0.9));

TEST(FgnDaviesHarte, AggregatedVarianceShowsLongRangeDependence) {
  // For fGn with Hurst H, Var(mean of m consecutive samples) ~ m^{2H-2}.
  // Estimate the scaling exponent from block variances.
  const double hurst = 0.85;
  const std::size_t n = 1 << 15;
  std::vector<double> xs = fgn_davies_harte(n, hurst, 9);
  const auto block_variance = [&](std::size_t m) {
    RunningStats stats;
    for (std::size_t start = 0; start + m <= n; start += m) {
      double mean = 0.0;
      for (std::size_t i = 0; i < m; ++i) mean += xs[start + i];
      stats.add(mean / static_cast<double>(m));
    }
    return stats.variance_population();
  };
  const double v8 = block_variance(8);
  const double v64 = block_variance(64);
  const double exponent = std::log(v64 / v8) / std::log(8.0);
  // Theory: 2H - 2 = -0.3. White noise would give -1.
  EXPECT_NEAR(exponent, 2.0 * hurst - 2.0, 0.15);
}

TEST(FgnHosking, MatchesDaviesHarteDistribution) {
  // Cross-validate the two exact samplers: same variance and lag-1
  // autocovariance on moderate-size series.
  const double hurst = 0.75;
  RunningStats dh_stats, hos_stats;
  double dh_acf = 0.0, hos_acf = 0.0;
  constexpr int kSeries = 6;
  constexpr std::size_t kLen = 512;
  for (int s = 0; s < kSeries; ++s) {
    const auto dh = fgn_davies_harte(kLen, hurst, 40 + s);
    const auto hos = fgn_hosking(kLen, hurst, 40 + s);
    for (const double x : dh) dh_stats.add(x);
    for (const double x : hos) hos_stats.add(x);
    dh_acf += sample_autocovariance(dh, 1);
    hos_acf += sample_autocovariance(hos, 1);
  }
  EXPECT_NEAR(dh_stats.variance_population(), hos_stats.variance_population(),
              0.15);
  EXPECT_NEAR(dh_acf / kSeries, hos_acf / kSeries, 0.12);
}

TEST(Fgn, ParameterValidation) {
  EXPECT_THROW((void)fgn_davies_harte(0, 0.8, 1), ContractViolation);
  EXPECT_THROW((void)fgn_davies_harte(8, 0.0, 1), ContractViolation);
  EXPECT_THROW((void)fgn_davies_harte(8, 1.0, 1), ContractViolation);
  EXPECT_THROW((void)fgn_hosking(8, 1.5, 1), ContractViolation);
}

TEST(Fgn, LengthOneSeriesWorks) {
  EXPECT_EQ(fgn_davies_harte(1, 0.8, 2).size(), 1u);
  EXPECT_EQ(fgn_hosking(1, 0.8, 2).size(), 1u);
}

}  // namespace
}  // namespace spca
