#include "synth/gravity.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace spca {
namespace {

TEST(GravityMeans, TotalMatchesTarget) {
  const Vector means = gravity_means({1.0, 2.0, 3.0}, 6000.0);
  double total = 0.0;
  for (std::size_t j = 0; j < means.size(); ++j) total += means[j];
  EXPECT_NEAR(total, 6000.0, 1e-9);
}

TEST(GravityMeans, ProportionalToWeightProducts) {
  const Vector means = gravity_means({1.0, 2.0}, 100.0, /*self_fraction=*/0.0);
  // Flows: (0,0)=0, (0,1) ~ 2, (1,0) ~ 2, (1,1)=0.
  EXPECT_DOUBLE_EQ(means[0], 0.0);
  EXPECT_DOUBLE_EQ(means[3], 0.0);
  EXPECT_DOUBLE_EQ(means[1], 50.0);
  EXPECT_DOUBLE_EQ(means[2], 50.0);
}

TEST(GravityMeans, HeavierRouterPairsGetMoreTraffic) {
  const Vector means = gravity_means({1.0, 2.0, 4.0}, 1000.0);
  const auto flow = [&](RouterId o, RouterId d) {
    return means[od_flow_id(o, d, 3)];
  };
  EXPECT_GT(flow(2, 1), flow(1, 0));
  EXPECT_NEAR(flow(2, 1) / flow(1, 0), 4.0, 1e-9);
}

TEST(GravityMeans, SelfFractionScalesDiagonal) {
  const Vector with_self = gravity_means({1.0, 1.0}, 100.0, 0.5);
  const Vector no_self = gravity_means({1.0, 1.0}, 100.0, 0.0);
  EXPECT_GT(with_self[od_flow_id(0, 0, 2)], 0.0);
  EXPECT_EQ(no_self[od_flow_id(0, 0, 2)], 0.0);
}

TEST(GravityMeans, Validation) {
  EXPECT_THROW((void)gravity_means({1.0}, 100.0), ContractViolation);
  EXPECT_THROW((void)gravity_means({1.0, 0.0}, 100.0), ContractViolation);
  EXPECT_THROW((void)gravity_means({1.0, 1.0}, 0.0), ContractViolation);
  EXPECT_THROW((void)gravity_means({1.0, 1.0}, 10.0, -0.1),
               ContractViolation);
}

TEST(AbileneWeights, MatchTopologySize) {
  EXPECT_EQ(abilene_router_weights().size(), 9u);
  for (const double w : abilene_router_weights()) {
    EXPECT_GT(w, 0.0);
  }
}

}  // namespace
}  // namespace spca
