#include "synth/diurnal.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace spca {
namespace {

TEST(Diurnal, PeaksNearConfiguredFraction) {
  DiurnalProfile profile;
  const double peak_time = profile.peak_fraction * profile.day_seconds;
  const double at_peak = diurnal_multiplier(profile, peak_time);
  // Scan the day: nothing should exceed the configured peak by much.
  double best = 0.0;
  for (int step = 0; step < 288; ++step) {
    best = std::max(best,
                    diurnal_multiplier(profile, step * 300.0));
  }
  EXPECT_NEAR(best, at_peak, 0.02);
  EXPECT_GT(at_peak, 1.2);
}

TEST(Diurnal, TroughIsWellBelowPeak) {
  DiurnalProfile profile;
  const double peak =
      diurnal_multiplier(profile, profile.peak_fraction * profile.day_seconds);
  const double trough = diurnal_multiplier(
      profile, (profile.peak_fraction + 0.5) * profile.day_seconds);
  EXPECT_LT(trough, 0.7 * peak);
}

TEST(Diurnal, FloorIsRespected) {
  DiurnalProfile profile;
  profile.daily_amplitude = 2.0;  // exaggerated: cosine dips below floor
  profile.floor = 0.2;
  for (int step = 0; step < 1000; ++step) {
    EXPECT_GE(diurnal_multiplier(profile, step * 600.0), 0.2);
  }
}

TEST(Diurnal, WeekendDipAppliesOnDays5And6) {
  DiurnalProfile profile;
  profile.weekend_dip = 0.4;
  const double weekday = diurnal_multiplier(profile, 2.0 * 86400.0);
  const double weekend = diurnal_multiplier(profile, 5.0 * 86400.0);
  // Same time of day, different day class.
  EXPECT_NEAR(weekend, weekday * 0.6, 1e-9);
}

TEST(Diurnal, PeriodicAcrossWeeks) {
  DiurnalProfile profile;
  const double t = 1.25 * 86400.0;
  EXPECT_NEAR(diurnal_multiplier(profile, t),
              diurnal_multiplier(profile, t + 7.0 * 86400.0), 1e-9);
}

TEST(Diurnal, FlatProfileIsConstantOne) {
  DiurnalProfile profile;
  profile.daily_amplitude = 0.0;
  profile.harmonic_amplitude = 0.0;
  profile.weekend_dip = 0.0;
  for (int step = 0; step < 100; ++step) {
    EXPECT_NEAR(diurnal_multiplier(profile, step * 3600.0), 1.0, 1e-12);
  }
}

}  // namespace
}  // namespace spca
