#include "synth/traffic_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/stats.hpp"
#include "pca/pca_model.hpp"

namespace spca {
namespace {

TrafficModelConfig small_config() {
  TrafficModelConfig config;
  config.num_intervals = 576;  // two days at 5-minute intervals
  config.seed = 7;
  return config;
}

TEST(TrafficModel, ShapesAndNames) {
  const Topology topo = abilene_topology();
  const TraceSet trace = generate_traffic(topo, small_config());
  EXPECT_EQ(trace.num_intervals(), 576u);
  EXPECT_EQ(trace.num_flows(), 81u);
  EXPECT_EQ(trace.flow_names()[topo.flow_id("ATLA", "CHIC")], "ATLA-CHIC");
  EXPECT_TRUE(trace.events().empty());
}

TEST(TrafficModel, DeterministicInSeed) {
  const Topology topo = abilene_topology();
  const TraceSet a = generate_traffic(topo, small_config());
  const TraceSet b = generate_traffic(topo, small_config());
  EXPECT_EQ(max_abs_diff(a.volumes(), b.volumes()), 0.0);
  TrafficModelConfig other = small_config();
  other.seed = 8;
  const TraceSet c = generate_traffic(topo, other);
  EXPECT_GT(max_abs_diff(a.volumes(), c.volumes()), 0.0);
}

TEST(TrafficModel, VolumesArePositiveAndPlausible) {
  const TraceSet trace =
      generate_traffic(abilene_topology(), small_config());
  double total = 0.0;
  for (std::size_t t = 0; t < trace.num_intervals(); ++t) {
    for (std::size_t j = 0; j < trace.num_flows(); ++j) {
      const double v = trace.volumes()(t, j);
      ASSERT_GT(v, 0.0);
      ASSERT_TRUE(std::isfinite(v));
      total += v;
    }
  }
  // Network-wide mean volume should be near the configured rate.
  const double per_interval = total / static_cast<double>(trace.num_intervals());
  const TrafficModelConfig config = small_config();
  const double target = config.bytes_per_second * config.interval_seconds;
  EXPECT_NEAR(per_interval / target, 1.0, 0.35);
}

TEST(TrafficModel, IntervalLengthScalesVolume) {
  TrafficModelConfig five_min = small_config();
  // Flat seasonal profile: otherwise the two traces cover different spans
  // of the diurnal cycle and their means are not directly comparable.
  five_min.diurnal.daily_amplitude = 0.0;
  five_min.diurnal.harmonic_amplitude = 0.0;
  five_min.diurnal.weekend_dip = 0.0;
  TrafficModelConfig one_min = five_min;
  one_min.interval_seconds = 60.0;
  const Topology topo = abilene_topology();
  const TraceSet a = generate_traffic(topo, five_min);
  const TraceSet b = generate_traffic(topo, one_min);
  const double mean_a = column_means(a.volumes())[1];
  const double mean_b = column_means(b.volumes())[1];
  EXPECT_NEAR(mean_a / mean_b, 5.0, 0.5);
}

TEST(TrafficModel, DiurnalCycleVisibleInAggregate) {
  TrafficModelConfig config = small_config();
  config.num_intervals = 288;  // one day
  const TraceSet trace = generate_traffic(abilene_topology(), config);
  // Compare network totals at the configured peak vs the trough.
  const auto total_at = [&](std::size_t t) {
    double sum = 0.0;
    for (std::size_t j = 0; j < trace.num_flows(); ++j) {
      sum += trace.volumes()(t, j);
    }
    return sum;
  };
  const std::size_t peak_idx =
      static_cast<std::size_t>(config.diurnal.peak_fraction * 288.0);
  const std::size_t trough_idx = (peak_idx + 144) % 288;
  EXPECT_GT(total_at(peak_idx), 1.3 * total_at(trough_idx));
}

TEST(TrafficModel, TrafficLivesNearLowDimensionalSubspace) {
  // The PCA premise: a few components capture most of the energy of the
  // centered traffic matrix.
  TrafficModelConfig config = small_config();
  config.num_intervals = 864;
  const TraceSet trace = generate_traffic(abilene_topology(), config);
  const PcaModel model = PcaModel::from_data(trace.volumes());
  const std::size_t r90 = select_rank_by_energy(model.singular_values(), 0.9);
  EXPECT_LE(r90, 12u);
}

TEST(TrafficModel, GravityStructureSurvivesNoise) {
  const TraceSet trace =
      generate_traffic(abilene_topology(), small_config());
  const Topology topo = abilene_topology();
  const Vector means = column_means(trace.volumes());
  // NEWY-CHIC (heavy metros) must far exceed KANS-SALT (light metros).
  EXPECT_GT(means[topo.flow_id("NEWY", "CHIC")],
            3.0 * means[topo.flow_id("KANS", "SALT")]);
}

TEST(TrafficModel, ConfigValidation) {
  const Topology topo = abilene_topology();
  TrafficModelConfig config;
  config.num_intervals = 1;
  EXPECT_THROW((void)generate_traffic(topo, config), ContractViolation);
  config = TrafficModelConfig{};
  config.interval_seconds = 0.0;
  EXPECT_THROW((void)generate_traffic(topo, config), ContractViolation);
}

}  // namespace
}  // namespace spca
