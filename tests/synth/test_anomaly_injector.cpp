#include "synth/anomaly_injector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/contracts.hpp"
#include "linalg/stats.hpp"
#include "synth/traffic_model.hpp"

namespace spca {
namespace {

class AnomalyInjectorTest : public ::testing::Test {
 protected:
  Topology topo_ = abilene_topology();

  TraceSet make_trace() {
    TrafficModelConfig config;
    config.num_intervals = 288;
    config.seed = 11;
    return generate_traffic(topo_, config);
  }
};

TEST_F(AnomalyInjectorTest, DdosScalesVictimFlowsOnly) {
  TraceSet trace = make_trace();
  const TraceSet clean = make_trace();
  AnomalyInjector injector(topo_, 1);
  const RouterId victim = topo_.router_id("WASH");
  injector.inject_ddos(trace, 100, 3, victim, 2.0);

  ASSERT_EQ(trace.events().size(), 1u);
  EXPECT_EQ(trace.events()[0].kind, "ddos");
  EXPECT_EQ(trace.events()[0].flows.size(), 8u);  // all origins but WASH

  for (std::size_t j = 0; j < trace.num_flows(); ++j) {
    const OdPair od = od_pair_of(static_cast<FlowId>(j), 9);
    const double expected_factor =
        (od.destination == victim && od.origin != victim) ? 3.0 : 1.0;
    EXPECT_NEAR(trace.volumes()(101, j) / clean.volumes()(101, j),
                expected_factor, 1e-9)
        << "flow " << j;
    // Outside the episode nothing changes.
    EXPECT_DOUBLE_EQ(trace.volumes()(99, j), clean.volumes()(99, j));
    EXPECT_DOUBLE_EQ(trace.volumes()(103, j), clean.volumes()(103, j));
  }
}

TEST_F(AnomalyInjectorTest, BotnetAddsFractionOfStd) {
  TraceSet trace = make_trace();
  const TraceSet clean = make_trace();
  const Vector variances = column_variances(clean.volumes());
  AnomalyInjector injector(topo_, 2);
  const std::vector<FlowId> flows = {3, 17, 40};
  injector.inject_botnet(trace, 50, 2, flows, 2.0);

  for (const FlowId f : flows) {
    const double delta = 2.0 * std::sqrt(variances[f]);
    EXPECT_NEAR(trace.volumes()(50, f) - clean.volumes()(50, f), delta,
                1e-6 * delta);
    EXPECT_NEAR(trace.volumes()(51, f) - clean.volumes()(51, f), delta,
                1e-6 * delta);
  }
  EXPECT_EQ(trace.events()[0].kind, "botnet");
}

TEST_F(AnomalyInjectorTest, LocalStdIsBelowGlobalStdUnderDiurnal) {
  // The first-difference estimator removes the diurnal trend, so the local
  // std must be well below the trace-wide std for seasonal traffic.
  const TraceSet trace = make_trace();
  const Vector local = AnomalyInjector::local_std(trace);
  const Vector global = column_variances(trace.volumes());
  for (std::size_t j = 0; j < trace.num_flows(); ++j) {
    EXPECT_GT(local[j], 0.0);
    EXPECT_LT(local[j], std::sqrt(global[j]));
  }
}

TEST_F(AnomalyInjectorTest, BotnetLocalAddsFractionOfLocalStd) {
  TraceSet trace = make_trace();
  const TraceSet clean = make_trace();
  const Vector local = AnomalyInjector::local_std(clean);
  AnomalyInjector injector(topo_, 12);
  const std::vector<FlowId> flows = {4, 19};
  injector.inject_botnet_local(trace, 60, 2, flows, 2.5);
  for (const FlowId f : flows) {
    const double delta = 2.5 * local[f];
    EXPECT_NEAR(trace.volumes()(60, f) - clean.volumes()(60, f), delta,
                1e-6 * delta);
    EXPECT_NEAR(trace.volumes()(61, f) - clean.volumes()(61, f), delta,
                1e-6 * delta);
  }
  EXPECT_EQ(trace.events()[0].kind, "botnet");
}

TEST_F(AnomalyInjectorTest, FlashCrowdRampsUpAndDown) {
  TraceSet trace = make_trace();
  const TraceSet clean = make_trace();
  AnomalyInjector injector(topo_, 3);
  const RouterId dest = topo_.router_id("NEWY");
  injector.inject_flash_crowd(trace, 10, 9, dest, 2.0);

  const FlowId f = topo_.flow_id("LOSA", "NEWY");
  const auto factor = [&](std::int64_t t) {
    return trace.volumes()(static_cast<std::size_t>(t), f) /
           clean.volumes()(static_cast<std::size_t>(t), f);
  };
  // Mid-episode boost exceeds the edges (triangular shape).
  EXPECT_GT(factor(14), factor(10));
  EXPECT_GT(factor(14), factor(18));
  EXPECT_GT(factor(14), 2.0);  // near the configured peak
}

TEST_F(AnomalyInjectorTest, OutageSuppressesBothDirections) {
  TraceSet trace = make_trace();
  const TraceSet clean = make_trace();
  AnomalyInjector injector(topo_, 4);
  const RouterId router = topo_.router_id("KANS");
  injector.inject_outage(trace, 200, 2, router, 0.1);

  const FlowId out = topo_.flow_id("KANS", "ATLA");
  const FlowId in = topo_.flow_id("ATLA", "KANS");
  EXPECT_NEAR(trace.volumes()(200, out) / clean.volumes()(200, out), 0.1,
              1e-9);
  EXPECT_NEAR(trace.volumes()(201, in) / clean.volumes()(201, in), 0.1,
              1e-9);
}

TEST_F(AnomalyInjectorTest, ScanAddsFlatVolumeFromOrigin) {
  TraceSet trace = make_trace();
  const TraceSet clean = make_trace();
  AnomalyInjector injector(topo_, 5);
  const RouterId origin = topo_.router_id("SEAT");
  injector.inject_scan(trace, 30, 1, origin, 12345.0);

  for (RouterId d = 0; d < 9; ++d) {
    if (d == origin) continue;
    const FlowId f = od_flow_id(origin, d, 9);
    EXPECT_NEAR(trace.volumes()(30, f) - clean.volumes()(30, f), 12345.0,
                1e-6);
  }
}

TEST_F(AnomalyInjectorTest, EpisodeClampedToTraceEnd) {
  TraceSet trace = make_trace();
  AnomalyInjector injector(topo_, 6);
  injector.inject_ddos(trace, 286, 10, 0, 1.0);
  EXPECT_EQ(trace.events()[0].end, 287);
}

TEST_F(AnomalyInjectorTest, MixtureInjectsRequestedCountNonOverlapping) {
  TraceSet trace = make_trace();
  AnomalyInjector injector(topo_, 7);
  const auto events = injector.inject_mixture(trace, 12, 0, 288);
  EXPECT_EQ(events.size(), 12u);
  // Episodes must not overlap.
  std::set<std::int64_t> used;
  for (const auto& e : events) {
    for (std::int64_t t = e.start; t <= e.end; ++t) {
      EXPECT_TRUE(used.insert(t).second) << "overlap at " << t;
    }
  }
  // Mixture is botnet-heavy by design.
  std::size_t botnets = 0;
  for (const auto& e : events) {
    if (e.kind == "botnet") ++botnets;
  }
  EXPECT_GE(botnets, 3u);
}

TEST_F(AnomalyInjectorTest, MixtureIsDeterministicInSeed) {
  TraceSet a = make_trace();
  TraceSet b = make_trace();
  AnomalyInjector ia(topo_, 9);
  AnomalyInjector ib(topo_, 9);
  (void)ia.inject_mixture(a, 6, 0, 288);
  (void)ib.inject_mixture(b, 6, 0, 288);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].start, b.events()[i].start);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
  }
}

TEST_F(AnomalyInjectorTest, ArgumentValidation) {
  TraceSet trace = make_trace();
  AnomalyInjector injector(topo_, 10);
  EXPECT_THROW(injector.inject_ddos(trace, 0, 1, 99, 1.0),
               ContractViolation);
  EXPECT_THROW(injector.inject_ddos(trace, 0, 0, 0, 1.0), ContractViolation);
  EXPECT_THROW(injector.inject_ddos(trace, 500, 1, 0, 1.0),
               ContractViolation);
  EXPECT_THROW(injector.inject_botnet(trace, 0, 1, {}, 1.0),
               ContractViolation);
  EXPECT_THROW(injector.inject_outage(trace, 0, 1, 0, 1.5),
               ContractViolation);
}

}  // namespace
}  // namespace spca
