#include "synth/address_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/contracts.hpp"
#include "synth/packet_synthesizer.hpp"
#include "traffic/entropy.hpp"

namespace spca {
namespace {

std::vector<Packet> normal_packets(std::uint64_t seed) {
  auto packets = synthesize_packets(3.0e5, od_flow_id(1, 2, 4), 4, 0,
                                    PacketSizeModel{}, seed);
  assign_addresses(packets, AddressModel{}, seed);
  return packets;
}

TEST(AddressModel, PoolsAreDisjointPerRouter) {
  EXPECT_NE(host_address(1, 5), host_address(2, 5));
  EXPECT_EQ(host_address(1, 5) >> 20, 1u);
}

TEST(AddressModel, AddressesComeFromEndpointPools) {
  for (const Packet& p : normal_packets(3)) {
    EXPECT_EQ(p.src_addr >> 20, p.origin);
    EXPECT_EQ(p.dst_addr >> 20, p.destination);
  }
}

TEST(AddressModel, PopularityIsSkewed) {
  // Zipf(1.0): the most popular host should carry far more packets than a
  // mid-rank one.
  const auto packets = normal_packets(4);
  std::map<std::uint32_t, int> counts;
  for (const Packet& p : packets) ++counts[p.src_addr];
  int max_count = 0;
  for (const auto& [addr, count] : counts) max_count = std::max(max_count, count);
  const double mean_count =
      static_cast<double>(packets.size()) / static_cast<double>(counts.size());
  EXPECT_GT(max_count, 5.0 * mean_count);
}

TEST(AddressModel, DeterministicInSeed) {
  const auto a = normal_packets(9);
  const auto b = normal_packets(9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src_addr, b[i].src_addr);
    EXPECT_EQ(a[i].dst_addr, b[i].dst_addr);
  }
}

TEST(ScanPackets, SingleSourceManyDestinations) {
  const auto scan = synthesize_scan_packets(od_flow_id(0, 3, 4), 4, 7, 400,
                                            64, AddressModel{}, 5);
  ASSERT_EQ(scan.size(), 400u);
  std::set<std::uint32_t> sources, destinations;
  for (const Packet& p : scan) {
    EXPECT_EQ(p.origin, 0u);
    EXPECT_EQ(p.destination, 3u);
    EXPECT_EQ(p.size_bytes, 64u);
    EXPECT_EQ(p.interval, 7);
    sources.insert(p.src_addr);
    destinations.insert(p.dst_addr);
  }
  EXPECT_EQ(sources.size(), 1u);
  EXPECT_GT(destinations.size(), 200u);  // near-uniform sweep of 512 hosts
}

TEST(ScanPackets, EntropySignatureDwarfsNormalTraffic) {
  // The pipeline property the entropy detector relies on: a scan pushes
  // the flow's destination-address entropy far above its normal level
  // while adding negligible volume.
  const FlowId flow = od_flow_id(1, 2, 4);
  auto normal = synthesize_packets(3.0e5, flow, 4, 0, PacketSizeModel{}, 6);
  assign_addresses(normal, AddressModel{}, 6);
  EntropyAggregator agg(16, EntropyAggregator::Feature::kDestinationAddress);
  for (const Packet& p : normal) agg.record(p, 4);
  const double normal_entropy = agg.counter(flow).entropy_bits();
  (void)agg.end_interval();

  auto with_scan = normal;
  const auto scan = synthesize_scan_packets(flow, 4, 0, 400, 64,
                                            AddressModel{}, 7);
  double scan_bytes = 0.0;
  for (const Packet& p : scan) {
    with_scan.push_back(p);
    scan_bytes += static_cast<double>(p.size_bytes);
  }
  for (const Packet& p : with_scan) agg.record(p, 4);
  const double scan_entropy = agg.counter(flow).entropy_bits();

  EXPECT_GT(scan_entropy, normal_entropy + 1.0);  // > 1 bit jump
  EXPECT_LT(scan_bytes, 0.1 * 3.0e5);             // < 10% volume change
}

TEST(ScanPackets, Validation) {
  EXPECT_THROW((void)synthesize_scan_packets(0, 4, 0, 0, 64, AddressModel{}, 1),
               ContractViolation);
  EXPECT_THROW((void)synthesize_scan_packets(0, 4, 0, 10, 0, AddressModel{}, 1),
               ContractViolation);
}

}  // namespace
}  // namespace spca
