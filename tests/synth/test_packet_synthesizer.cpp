#include "synth/packet_synthesizer.hpp"

#include <gtest/gtest.h>

#include "traffic/volume_counter.hpp"

namespace spca {
namespace {

TEST(PacketSynthesizer, PacketsSumToVolume) {
  const PacketSizeModel model;
  const double volume = 250000.0;
  const auto packets = synthesize_packets(volume, 5, 3, 0, model, 1);
  double total = 0.0;
  for (const auto& p : packets) total += static_cast<double>(p.size_bytes);
  EXPECT_NEAR(total, volume, 1.0);
}

TEST(PacketSynthesizer, PacketsCarryFlowOdPair) {
  const PacketSizeModel model;
  const FlowId flow = od_flow_id(1, 2, 3);
  const auto packets = synthesize_packets(50000.0, flow, 3, 7, model, 2);
  ASSERT_FALSE(packets.empty());
  for (const auto& p : packets) {
    EXPECT_EQ(p.origin, 1u);
    EXPECT_EQ(p.destination, 2u);
    EXPECT_EQ(p.interval, 7);
  }
}

TEST(PacketSynthesizer, BimodalSizesRoughlyMatchFraction) {
  PacketSizeModel model;
  model.large_fraction = 0.5;
  const auto packets = synthesize_packets(3.0e6, 0, 3, 0, model, 3);
  std::size_t large = 0;
  for (const auto& p : packets) {
    if (p.size_bytes >= model.large_bytes) ++large;
  }
  const double fraction =
      static_cast<double>(large) / static_cast<double>(packets.size());
  EXPECT_NEAR(fraction, 0.5, 0.05);
}

TEST(PacketSynthesizer, ZeroVolumeYieldsNoPackets) {
  EXPECT_TRUE(synthesize_packets(0.0, 0, 3, 0, PacketSizeModel{}, 4).empty());
}

TEST(PacketSynthesizer, TinyVolumeStillAccounted) {
  const auto packets = synthesize_packets(10.0, 0, 3, 0, PacketSizeModel{}, 5);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].size_bytes, 10u);
}

TEST(PacketSynthesizer, DeterministicInSeed) {
  const auto a = synthesize_packets(1e5, 2, 3, 0, PacketSizeModel{}, 9);
  const auto b = synthesize_packets(1e5, 2, 3, 0, PacketSizeModel{}, 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].size_bytes, b[i].size_bytes);
  }
}

TEST(PacketSynthesizer, IntervalStreamReproducesTraceThroughVolumeCounter) {
  // End-to-end: volumes -> packets -> VolumeCounter -> volumes.
  Matrix volumes(1, 9);
  for (std::size_t j = 0; j < 9; ++j) {
    volumes(0, j) = 10000.0 + 1000.0 * static_cast<double>(j);
  }
  std::vector<std::string> names(9, "");
  for (std::size_t j = 0; j < 9; ++j) names[j] = "f" + std::to_string(j);
  const TraceSet trace(std::move(volumes), 300.0, names);

  const auto stream = synthesize_interval(trace, 0, 3, PacketSizeModel{}, 17);
  VolumeCounter counter(9);
  for (const auto& p : stream) {
    counter.record_packet(p, 3);
  }
  const Vector recovered = counter.end_interval();
  for (std::size_t j = 0; j < 9; ++j) {
    EXPECT_NEAR(recovered[j], trace.volumes()(0, j), 1.0) << "flow " << j;
  }
}

}  // namespace
}  // namespace spca
