#include "synth/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/contracts.hpp"
#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"

namespace spca {
namespace {

using Cplx = std::complex<double>;

TEST(NextPowerOfTwo, RoundsUp) {
  EXPECT_EQ(next_power_of_two(0), 1u);
  EXPECT_EQ(next_power_of_two(1), 1u);
  EXPECT_EQ(next_power_of_two(2), 2u);
  EXPECT_EQ(next_power_of_two(3), 4u);
  EXPECT_EQ(next_power_of_two(1025), 2048u);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Cplx> data(6);
  EXPECT_THROW(fft(data), ContractViolation);
}

TEST(Fft, DeltaTransformsToConstant) {
  std::vector<Cplx> data(8);
  data[0] = 1.0;
  fft(data);
  for (const auto& x : data) {
    EXPECT_NEAR(x.real(), 1.0, 1e-14);
    EXPECT_NEAR(x.imag(), 0.0, 1e-14);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 32;
  std::vector<Cplx> data(n);
  const std::size_t k0 = 5;
  for (std::size_t i = 0; i < n; ++i) {
    const double phase =
        2.0 * std::numbers::pi * static_cast<double>(k0 * i) / static_cast<double>(n);
    data[i] = Cplx(std::cos(phase), std::sin(phase));
  }
  fft(data);
  for (std::size_t k = 0; k < n; ++k) {
    const double expected = (k == k0) ? static_cast<double>(n) : 0.0;
    EXPECT_NEAR(std::abs(data[k]), expected, 1e-10) << "bin " << k;
  }
}

TEST(Fft, InverseRoundTrips) {
  Xoshiro256 gen(3);
  std::vector<Cplx> data(64);
  std::vector<Cplx> original(64);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = Cplx(standard_normal(gen), standard_normal(gen));
    original[i] = data[i];
  }
  fft(data, false);
  fft(data, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-12);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-12);
  }
}

TEST(Fft, ParsevalHolds) {
  Xoshiro256 gen(4);
  std::vector<Cplx> data(128);
  double time_energy = 0.0;
  for (auto& x : data) {
    x = Cplx(standard_normal(gen), 0.0);
    time_energy += std::norm(x);
  }
  fft(data);
  double freq_energy = 0.0;
  for (const auto& x : data) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / static_cast<double>(data.size()), time_energy,
              1e-9 * time_energy);
}

TEST(Fft, MatchesNaiveDftOnSmallInput) {
  Xoshiro256 gen(5);
  const std::size_t n = 16;
  std::vector<Cplx> data(n);
  for (auto& x : data) x = Cplx(standard_normal(gen), standard_normal(gen));
  std::vector<Cplx> naive(n);
  for (std::size_t k = 0; k < n; ++k) {
    Cplx sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double angle = -2.0 * std::numbers::pi *
                           static_cast<double>(k * i) / static_cast<double>(n);
      sum += data[i] * Cplx(std::cos(angle), std::sin(angle));
    }
    naive[k] = sum;
  }
  fft(data);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(data[k].real(), naive[k].real(), 1e-10);
    EXPECT_NEAR(data[k].imag(), naive[k].imag(), 1e-10);
  }
}

TEST(Fft, SizeOneAndEmptyAreNoOps) {
  std::vector<Cplx> one = {Cplx(3.0, -1.0)};
  fft(one);
  EXPECT_EQ(one[0], Cplx(3.0, -1.0));
  std::vector<Cplx> empty;
  EXPECT_NO_THROW(fft(empty));
}

}  // namespace
}  // namespace spca
