// End-to-end replay parity: the full pipeline (reader thread -> SPSC ring ->
// batched absorption) must leave the monitor in a state bit-identical to the
// per-interval pre-aggregated path — at every block size, batch size, thread
// count, and pass count.
#include "ingest/replay.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "../helpers.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "par/thread_pool.hpp"

namespace spca {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kWindow = 32;
constexpr double kEpsilon = 0.05;
constexpr std::size_t kRows = 8;

LocalMonitor make_monitor(std::size_t num_flows) {
  const ProjectionSource projection(ProjectionKind::kTugOfWar, 77);
  std::vector<FlowId> flows(num_flows);
  for (std::size_t j = 0; j < num_flows; ++j) {
    flows[j] = static_cast<FlowId>(j);
  }
  return LocalMonitor(1, flows, kWindow, kEpsilon, kRows, projection);
}

class ReplayTest : public ::testing::Test {
 protected:
  std::string path_ =
      (fs::temp_directory_path() /
       ("spca_replay_" + std::string(::testing::UnitTest::GetInstance()
                                         ->current_test_info()
                                         ->name())))
          .string();

  void TearDown() override {
    fs::remove(path_);
    set_global_threads(1);
  }
};

TEST_F(ReplayTest, FullCheckPassesAcrossConfigurations) {
  const TraceSet trace =
      testing::small_trace(testing::small_topology(), 48, 21);
  RecordExportOptions options;
  options.records_per_cell = 3;
  export_records(trace, path_, options);

  for (const std::size_t block : {1u, 5u, 64u}) {
    LocalMonitor monitor = make_monitor(trace.num_flows());
    ReplayConfig config;
    config.record_path = path_;
    config.interval_block = block;
    config.ring_batches = 4;
    config.check = ReplayCheck::kFull;
    config.check_every = 7;
    const ReplayStats stats = replay_records(monitor, config);
    EXPECT_TRUE(stats.parity_ok) << stats.parity_error;
    EXPECT_EQ(stats.records, 48u * trace.num_flows() * 3u);
    EXPECT_EQ(stats.intervals, 48u);
    EXPECT_EQ(stats.passes, 1u);
    EXPECT_GT(stats.records_per_sec, 0.0);
  }
}

TEST_F(ReplayTest, MultiplePassesExtendTheStream) {
  const TraceSet trace =
      testing::small_trace(testing::small_topology(), 16, 5);
  export_records(trace, path_);
  LocalMonitor monitor = make_monitor(trace.num_flows());
  ReplayConfig config;
  config.record_path = path_;
  config.repeat = 3;
  config.check = ReplayCheck::kFull;
  config.check_every = 10;
  const ReplayStats stats = replay_records(monitor, config);
  EXPECT_TRUE(stats.parity_ok) << stats.parity_error;
  EXPECT_EQ(stats.passes, 3u);
  EXPECT_EQ(stats.intervals, 48u);
  EXPECT_EQ(stats.records, 3u * 16u * trace.num_flows());
}

TEST_F(ReplayTest, ReplayedStateIsThreadCountInvariant) {
  const TraceSet trace =
      testing::small_trace(testing::small_topology(), 32, 13);
  RecordExportOptions options;
  options.records_per_cell = 2;
  export_records(trace, path_, options);

  std::vector<std::vector<std::byte>> states;
  for (const std::size_t threads : {1u, 2u, 7u}) {
    set_global_threads(threads);
    LocalMonitor monitor = make_monitor(trace.num_flows());
    ReplayConfig config;
    config.record_path = path_;
    config.check = ReplayCheck::kOff;
    const ReplayStats stats = replay_records(monitor, config);
    ASSERT_TRUE(stats.parity_ok);
    states.push_back(monitor.save_state());
  }
  EXPECT_EQ(states[0], states[1]);
  EXPECT_EQ(states[0], states[2]);
}

TEST_F(ReplayTest, AbsorbBlockMatchesPerIntervalPath) {
  const TraceSet trace =
      testing::small_trace(testing::small_topology(), 40, 17);
  const std::size_t w = trace.num_flows();

  LocalMonitor reference = make_monitor(w);
  for (std::int64_t t = 0; t < 40; ++t) {
    for (std::size_t j = 0; j < w; ++j) {
      reference.ingest_volume(static_cast<FlowId>(j),
                              trace.volumes()(static_cast<std::size_t>(t), j));
    }
    reference.absorb_interval(t);
  }
  const std::vector<std::byte> want = reference.save_state();

  for (const std::size_t threads : {1u, 2u, 7u}) {
    set_global_threads(threads);
    for (const std::size_t block : {1u, 8u, 40u}) {
      LocalMonitor monitor = make_monitor(w);
      std::vector<double> volumes;
      for (std::int64_t first = 0; first < 40;
           first += static_cast<std::int64_t>(block)) {
        const std::size_t rows =
            std::min<std::size_t>(block, static_cast<std::size_t>(40 - first));
        volumes.assign(rows * w, 0.0);
        for (std::size_t r = 0; r < rows; ++r) {
          for (std::size_t j = 0; j < w; ++j) {
            volumes[r * w + j] = trace.volumes()(
                static_cast<std::size_t>(first) + r, j);
          }
        }
        monitor.absorb_block(first, rows, volumes);
      }
      EXPECT_EQ(monitor.save_state(), want)
          << "threads=" << threads << " block=" << block;
    }
  }
}

TEST_F(ReplayTest, ShapeMismatchRejected) {
  const TraceSet trace =
      testing::small_trace(testing::small_topology(), 8, 2);
  export_records(trace, path_);
  LocalMonitor monitor = make_monitor(trace.num_flows() - 1);
  ReplayConfig config;
  config.record_path = path_;
  EXPECT_THROW((void)replay_records(monitor, config), InputError);
}

TEST_F(ReplayTest, IngestMetricsAreExported) {
  const TraceSet trace =
      testing::small_trace(testing::small_topology(), 8, 4);
  export_records(trace, path_);
  auto& registry = MetricsRegistry::global();
  const std::uint64_t records_before =
      registry.counter("spca.ingest.records").value();
  const std::uint64_t occupancy_before =
      registry.histogram("spca.ingest.ring_occupancy").count();

  LocalMonitor monitor = make_monitor(trace.num_flows());
  ReplayConfig config;
  config.record_path = path_;
  const ReplayStats stats = replay_records(monitor, config);
  ASSERT_TRUE(stats.parity_ok);

  EXPECT_EQ(registry.counter("spca.ingest.records").value() - records_before,
            stats.records);
  EXPECT_GT(registry.histogram("spca.ingest.ring_occupancy").count(),
            occupancy_before);
  EXPECT_GT(registry.gauge("spca.ingest.records_per_sec").value(), 0.0);
}

}  // namespace
}  // namespace spca
