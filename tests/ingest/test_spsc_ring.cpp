// SPSC ring: FIFO integrity, blocking backpressure (nothing is ever
// dropped), wraparound, and the close() protocol — exercised with real
// producer/consumer threads so the TSan job verifies the memory ordering.
#include "ingest/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

namespace spca {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(SpscRing<int>(65).capacity(), 128u);
}

TEST(SpscRing, SingleThreadOrderAndWraparound) {
  SpscRing<std::uint64_t> ring(4);
  std::uint64_t next_in = 0;
  std::uint64_t next_out = 0;
  // Many times around the ring with a mixed fill level.
  for (int round = 0; round < 1000; ++round) {
    while (ring.try_push(std::uint64_t(next_in))) ++next_in;
    std::uint64_t got = 0;
    for (int i = 0; i < 3 && ring.try_pop(got); ++i) {
      ASSERT_EQ(got, next_out);
      ++next_out;
    }
  }
  EXPECT_GT(next_out, 1000u);
}

TEST(SpscRing, TryPushFailsWhenFullTryPopWhenEmpty) {
  SpscRing<int> ring(2);
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_FALSE(ring.try_push(3));
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 1);
}

TEST(SpscRing, CloseDrainsThenEndsStream) {
  SpscRing<int> ring(8);
  ASSERT_TRUE(ring.push(10));
  ASSERT_TRUE(ring.push(11));
  ring.close();
  EXPECT_FALSE(ring.push(12));  // producers give up immediately
  int out = 0;
  EXPECT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 10);
  EXPECT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 11);
  EXPECT_FALSE(ring.pop(out));  // drained + closed = end of stream
}

TEST(SpscRing, ProducerBlocksUntilConsumerFreesASlot) {
  SpscRing<int> ring(2);
  ASSERT_TRUE(ring.push(0));
  ASSERT_TRUE(ring.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(ring.push(2));  // blocks: ring is full
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  int out = 0;
  ASSERT_TRUE(ring.pop(out));
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_GE(ring.blocked_pushes(), 1u);
}

TEST(SpscRing, ShutdownWhileFullUnblocksTheProducer) {
  SpscRing<int> ring(2);
  ASSERT_TRUE(ring.push(0));
  ASSERT_TRUE(ring.push(1));
  std::thread producer([&] {
    EXPECT_FALSE(ring.push(2));  // blocked on full, then woken by close()
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ring.close();
  producer.join();
  // The items pushed before the close are still deliverable.
  int out = 0;
  EXPECT_TRUE(ring.pop(out));
  EXPECT_TRUE(ring.pop(out));
  EXPECT_FALSE(ring.pop(out));
}

/// Streams `count` sequenced items through a small ring and asserts the
/// consumer sees exactly 0..count-1 in order. `slow_consumer` stalls the
/// consumer periodically (forcing producer backpressure); `slow_producer`
/// stalls the producer (forcing the consumer to wait on an empty ring).
void stress(std::size_t count, bool slow_consumer, bool slow_producer) {
  SpscRing<std::uint64_t> ring(8);
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < count; ++i) {
      if (slow_producer && i % 1024 == 0) std::this_thread::yield();
      ASSERT_TRUE(ring.push(std::uint64_t(i)));
    }
    ring.close();
  });
  std::uint64_t expected = 0;
  std::uint64_t item = 0;
  while (ring.pop(item)) {
    ASSERT_EQ(item, expected);
    ++expected;
    if (slow_consumer && expected % 512 == 0) std::this_thread::yield();
  }
  producer.join();
  EXPECT_EQ(expected, count);
  if (slow_consumer) EXPECT_GT(ring.blocked_pushes(), 0u);
}

TEST(SpscRing, StressMatchedRates) { stress(200000, false, false); }

TEST(SpscRing, StressSlowConsumer) { stress(100000, true, false); }

TEST(SpscRing, StressSlowProducer) { stress(100000, false, true); }

TEST(SpscRing, StressCloseWhileFullMidStream) {
  // Producer pushes an unbounded stream; the consumer walks away after a
  // prefix and closes. The producer must terminate (no deadlock) and every
  // item the consumer did pop must be in sequence.
  SpscRing<std::uint64_t> ring(4);
  std::atomic<std::uint64_t> produced{0};
  std::thread producer([&] {
    std::uint64_t i = 0;
    while (ring.push(std::uint64_t(i))) {
      ++i;
    }
    produced.store(i);
  });
  std::uint64_t expected = 0;
  std::uint64_t item = 0;
  while (expected < 1000 && ring.pop(item)) {
    ASSERT_EQ(item, expected);
    ++expected;
  }
  ring.close();
  producer.join();
  EXPECT_EQ(expected, 1000u);
  EXPECT_GE(produced.load(), expected);
}

TEST(SpscRing, MoveOnlyPayloadsMoveThrough) {
  SpscRing<std::unique_ptr<int>> ring(2);
  ASSERT_TRUE(ring.push(std::make_unique<int>(41)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 41);
}

}  // namespace
}  // namespace spca
