// Record-file round trips and malformed-input hardening: TraceSet ->
// record file -> TraceSet must be bit-exact in both formats and at every
// records-per-cell split, and every corruption must surface as InputError.
#include "ingest/record_file.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "../helpers.hpp"
#include "common/error.hpp"
#include "ingest/interval_source.hpp"

namespace spca {
namespace {

namespace fs = std::filesystem;

class RecordIoTest : public ::testing::Test {
 protected:
  std::string path_ =
      (fs::temp_directory_path() /
       ("spca_records_" +
        std::string(::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name())))
          .string();

  void TearDown() override { fs::remove(path_); }

  void write_raw(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
};

TEST(SplitCellExact, SequentialSumIsBitExact) {
  std::vector<double> parts;
  std::mt19937_64 rng(42);
  std::vector<double> volumes = {0.0,
                                 1.0,
                                 1.0 / 3.0,
                                 6.25e7,
                                 1e-300,
                                 std::numeric_limits<double>::denorm_min(),
                                 std::numeric_limits<double>::max() / 4,
                                 -123.456,
                                 5e-324};
  for (int i = 0; i < 200; ++i) {
    volumes.push_back(std::ldexp(
        static_cast<double>(rng() >> 11),
        static_cast<int>(rng() % 64) - 32));
  }
  for (const double v : volumes) {
    for (const std::uint32_t k : {1u, 2u, 3u, 7u, 128u, 1000u}) {
      split_cell_exact(v, k, parts);
      ASSERT_EQ(parts.size(), k);
      double sum = 0.0;
      for (const double p : parts) sum += p;
      ASSERT_EQ(0, std::memcmp(&sum, &v, sizeof v))
          << "v=" << v << " parts=" << k << " sum=" << sum;
    }
  }
}

TEST(SplitCellExact, NonFiniteAndSinglePartPassThrough) {
  std::vector<double> parts;
  split_cell_exact(42.0, 1, parts);
  EXPECT_EQ(parts, std::vector<double>{42.0});
  const double inf = std::numeric_limits<double>::infinity();
  split_cell_exact(inf, 4, parts);
  EXPECT_EQ(parts[0], inf);
  EXPECT_EQ(parts[1], 0.0);
}

void expect_traces_bit_identical(const TraceSet& a, const TraceSet& b) {
  ASSERT_EQ(a.num_intervals(), b.num_intervals());
  ASSERT_EQ(a.num_flows(), b.num_flows());
  ASSERT_DOUBLE_EQ(a.interval_seconds(), b.interval_seconds());
  for (std::size_t t = 0; t < a.num_intervals(); ++t) {
    for (std::size_t j = 0; j < a.num_flows(); ++j) {
      const double x = a.volumes()(t, j);
      const double y = b.volumes()(t, j);
      ASSERT_EQ(0, std::memcmp(&x, &y, sizeof x))
          << "t=" << t << " j=" << j << " " << x << " vs " << y;
    }
  }
}

TEST_F(RecordIoTest, BinaryRoundTripIsBitExact) {
  const TraceSet trace =
      testing::small_trace(testing::small_topology(), 40, 11);
  for (const std::uint32_t rpc : {1u, 3u, 128u}) {
    RecordExportOptions options;
    options.records_per_cell = rpc;
    export_records(trace, path_, options);
    const TraceSet back = import_records(path_);
    expect_traces_bit_identical(trace, back);
  }
}

TEST_F(RecordIoTest, CsvRoundTripIsBitExact) {
  const TraceSet trace =
      testing::small_trace(testing::small_topology(), 24, 3);
  RecordExportOptions options;
  options.format = RecordFormat::kCsv;
  options.records_per_cell = 2;
  export_records(trace, path_, options);
  const TraceSet back = import_records(path_);
  expect_traces_bit_identical(trace, back);
}

TEST_F(RecordIoTest, HeaderCarriesStreamMetadata) {
  const TraceSet trace =
      testing::small_trace(testing::small_topology(), 10, 5);
  RecordExportOptions options;
  options.records_per_cell = 2;
  export_records(trace, path_, options);
  RecordFileReader reader(path_);
  EXPECT_EQ(reader.format(), RecordFormat::kBinary);
  EXPECT_EQ(reader.header().num_flows, trace.num_flows());
  EXPECT_EQ(reader.header().num_intervals, 10u);
  EXPECT_DOUBLE_EQ(reader.header().interval_seconds,
                   trace.interval_seconds());
  EXPECT_EQ(reader.header().record_count, 10u * trace.num_flows() * 2u);
}

TEST_F(RecordIoTest, IntervalSourceReproducesTraceRows) {
  const TraceSet trace =
      testing::small_trace(testing::small_topology(), 16, 9);
  RecordExportOptions options;
  options.records_per_cell = 4;
  export_records(trace, path_, options);
  RecordIntervalSource source(path_);
  std::vector<double> row;
  std::int64_t t = -1;
  for (std::int64_t want = 0; want < 16; ++want) {
    ASSERT_TRUE(source.next_interval(row, t));
    ASSERT_EQ(t, want);
    ASSERT_EQ(row.size(), trace.num_flows());
    for (std::size_t j = 0; j < row.size(); ++j) {
      const double x = trace.volumes()(static_cast<std::size_t>(t), j);
      ASSERT_EQ(0, std::memcmp(&row[j], &x, sizeof x));
    }
  }
  EXPECT_FALSE(source.next_interval(row, t));
}

TEST_F(RecordIoTest, IntervalSourceEmitsZeroRowsForAbsentIntervals) {
  // Hand-built binary file: 3 flows x 4 intervals, records only in t=1.
  std::string bytes;
  const auto append = [&bytes](const void* p, std::size_t n) {
    bytes.append(static_cast<const char*>(p), n);
  };
  const std::uint32_t header_words[2] = {0x52435053u, 1u};  // magic, version
  const std::uint32_t shape[2] = {3u, 4u};
  const double seconds = 300.0;
  const std::uint64_t count = 2;
  append(header_words, 8);
  append(shape, 8);
  append(&seconds, 8);
  append(&count, 8);
  const FlowRecord records[2] = {{1, 0, 5.5}, {1, 2, 2.25}};
  append(records, sizeof records);
  write_raw(bytes);

  RecordIntervalSource source(path_);
  std::vector<double> row;
  std::int64_t t = -1;
  ASSERT_TRUE(source.next_interval(row, t));
  EXPECT_EQ(row, (std::vector<double>{0.0, 0.0, 0.0}));
  ASSERT_TRUE(source.next_interval(row, t));
  EXPECT_EQ(row, (std::vector<double>{5.5, 0.0, 2.25}));
  ASSERT_TRUE(source.next_interval(row, t));
  EXPECT_EQ(row, (std::vector<double>{0.0, 0.0, 0.0}));
  ASSERT_TRUE(source.next_interval(row, t));
  EXPECT_FALSE(source.next_interval(row, t));
}

TEST_F(RecordIoTest, TruncatedBinaryRejected) {
  const TraceSet trace = testing::small_trace(testing::small_topology(), 8, 1);
  export_records(trace, path_);
  std::string bytes;
  {
    std::ifstream in(path_, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  write_raw(bytes.substr(0, bytes.size() - 7));
  EXPECT_THROW(RecordFileReader reader(path_), InputError);
}

TEST_F(RecordIoTest, MalformedBinaryHeadersRejected) {
  const std::uint32_t magic = 0x52435053u;
  const auto build = [&](std::uint32_t version, std::uint32_t flows,
                         std::uint32_t intervals, double seconds,
                         std::uint64_t count) {
    std::string bytes;
    const auto append = [&bytes](const void* p, std::size_t n) {
      bytes.append(static_cast<const char*>(p), n);
    };
    append(&magic, 4);
    append(&version, 4);
    append(&flows, 4);
    append(&intervals, 4);
    append(&seconds, 8);
    append(&count, 8);
    return bytes;
  };
  const double nan = std::numeric_limits<double>::quiet_NaN();
  write_raw(build(2, 1, 1, 300.0, 0));  // unsupported version
  EXPECT_THROW(RecordFileReader r(path_), InputError);
  write_raw(build(1, 0, 1, 300.0, 0));  // zero flows
  EXPECT_THROW(RecordFileReader r(path_), InputError);
  write_raw(build(1, 1, 0, 300.0, 0));  // zero intervals
  EXPECT_THROW(RecordFileReader r(path_), InputError);
  write_raw(build(1, 1, 1, nan, 0));  // non-finite interval seconds
  EXPECT_THROW(RecordFileReader r(path_), InputError);
  write_raw(build(1, 1, 1, -5.0, 0));  // negative interval seconds
  EXPECT_THROW(RecordFileReader r(path_), InputError);
  write_raw(build(1, 1, 1, 300.0, 7));  // count disagrees with file size
  EXPECT_THROW(RecordFileReader r(path_), InputError);
}

TEST_F(RecordIoTest, InvalidBinaryRecordsRejected) {
  const auto build = [&](const FlowRecord& record) {
    std::string bytes;
    const auto append = [&bytes](const void* p, std::size_t n) {
      bytes.append(static_cast<const char*>(p), n);
    };
    const std::uint32_t header_words[4] = {0x52435053u, 1u, /*flows=*/2u,
                                           /*intervals=*/2u};
    const double seconds = 60.0;
    const std::uint64_t count = 1;
    append(header_words, 16);
    append(&seconds, 8);
    append(&count, 8);
    append(&record, sizeof record);
    return bytes;
  };
  RecordBatch batch;
  write_raw(build({0, 2, 1.0}));  // flow out of range
  EXPECT_THROW(RecordFileReader(path_).next_batch(batch), InputError);
  write_raw(build({2, 0, 1.0}));  // interval out of range
  EXPECT_THROW(RecordFileReader(path_).next_batch(batch), InputError);
  write_raw(build({0, 0, std::numeric_limits<double>::quiet_NaN()}));
  EXPECT_THROW(RecordFileReader(path_).next_batch(batch), InputError);
  write_raw(build({0, 0, -1.0}));  // negative volume
  EXPECT_THROW(RecordFileReader(path_).next_batch(batch), InputError);
}

TEST_F(RecordIoTest, DecreasingIntervalsRejected) {
  std::string bytes;
  const auto append = [&bytes](const void* p, std::size_t n) {
    bytes.append(static_cast<const char*>(p), n);
  };
  const std::uint32_t header_words[4] = {0x52435053u, 1u, 1u, 4u};
  const double seconds = 60.0;
  const std::uint64_t count = 2;
  append(header_words, 16);
  append(&seconds, 8);
  append(&count, 8);
  const FlowRecord records[2] = {{3, 0, 1.0}, {1, 0, 1.0}};
  append(records, sizeof records);
  write_raw(bytes);
  RecordBatch batch;
  EXPECT_THROW(RecordFileReader(path_).next_batch(batch), InputError);
}

TEST_F(RecordIoTest, MalformedCsvRejected) {
  const std::string header =
      "interval,flow,bytes,num_flows,num_intervals,interval_seconds\n";
  const std::vector<std::string> bad_files = {
      "",                                   // empty
      "wrong,header\n",                     // wrong header
      header,                               // no data rows
      header + "0,0,1.5,2,4\n",             // wrong column count
      header + "0,0,1.5,2,4,300,extra\n",   // wrong column count (too many)
      header + "zero,0,1.5,2,4,300\n",      // non-numeric interval
      header + "0,x,1.5,2,4,300\n",         // non-numeric flow
      header + "0,0,bogus,2,4,300\n",       // non-numeric bytes
      header + "0,0,nan,2,4,300\n",         // NaN bytes
      header + "0,0,inf,2,4,300\n",         // Inf bytes
      header + "0,0,-2.5,2,4,300\n",        // negative bytes
      header + "0,0,1.5,0,4,300\n",         // zero flows
      header + "0,0,1.5,2,0,300\n",         // zero intervals
      header + "0,0,1.5,2,4,nan\n",         // non-finite seconds
      header + "0,0,1.5,2,4,-1\n",          // negative seconds
      header + "0,5,1.5,2,4,300\n",         // flow out of range
      header + "9,0,1.5,2,4,300\n",         // interval out of range
      header + "1,0,1.5,2,4,300\n0,0,2,0,0,0\n",  // decreasing interval
  };
  for (const std::string& contents : bad_files) {
    write_raw(contents);
    EXPECT_THROW(
        {
          RecordFileReader reader(path_);
          RecordBatch batch;
          while (reader.next_batch(batch) > 0) {
          }
        },
        InputError)
        << "accepted: " << contents;
  }
}

TEST_F(RecordIoTest, FuzzedGarbageNeverCrashes) {
  // Deterministic byte soup: every parse must either succeed or throw a
  // typed Error — never crash, hang, or hand back unvalidated records.
  std::mt19937_64 rng(0xfeedface);
  std::string alphabet = "0123456789,.-+eEnaif\n\r \txyz";
  alphabet.push_back('\0');
  for (int round = 0; round < 200; ++round) {
    std::string contents;
    const std::size_t len = rng() % 300;
    const bool binary_like = round % 3 == 0;
    if (binary_like) {
      const std::uint32_t magic = 0x52435053u;
      contents.append(reinterpret_cast<const char*>(&magic), 4);
    }
    for (std::size_t i = 0; i < len; ++i) {
      contents.push_back(alphabet[rng() % alphabet.size()]);
    }
    write_raw(contents);
    try {
      RecordFileReader reader(path_);
      RecordBatch batch;
      while (reader.next_batch(batch) > 0) {
      }
    } catch (const Error&) {
      // expected for almost every input
    }
  }
}

TEST_F(RecordIoTest, ExportRejectsUnwritablePath) {
  const TraceSet trace = testing::small_trace(testing::small_topology(), 4, 2);
  EXPECT_THROW(export_records(trace, "/nonexistent-dir/records.spcr"),
               InputError);
}

}  // namespace
}  // namespace spca
