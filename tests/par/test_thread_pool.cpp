// ThreadPool unit tests: chunk coverage, determinism of the static split,
// exception propagation, reuse after drain, and the inline fast paths.
#include "par/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace spca {
namespace {

TEST(ThreadPool, SizeOneHasNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, ZeroResolvesToAtLeastOneLane) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  for (const std::size_t lanes : {1u, 2u, 3u, 7u}) {
    ThreadPool pool(lanes);
    for (const std::size_t n : {0u, 1u, 2u, 5u, 64u, 1000u}) {
      std::vector<std::atomic<int>> hits(n);
      pool.parallel_for(0, n, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "lanes=" << lanes << " n=" << n
                                     << " i=" << i;
      }
    }
  }
}

TEST(ThreadPool, ParallelForRespectsOffsetRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(20);
  pool.parallel_for(7, 17, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 7 && i < 17) ? 1 : 0) << "i=" << i;
  }
}

TEST(ThreadPool, EmptyRangeNeverInvokesBody) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  pool.parallel_for(9, 3, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, MinGrainForcesInlineExecution) {
  ThreadPool pool(4);
  std::vector<std::pair<std::size_t, std::size_t>> calls;
  // 10 items at grain 100 -> one lane -> a single inline body(0, 10) call,
  // and calls is touched from the calling thread only.
  pool.parallel_for(
      0, 10, [&](std::size_t lo, std::size_t hi) { calls.push_back({lo, hi}); },
      /*min_grain=*/100);
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0].first, 0u);
  EXPECT_EQ(calls[0].second, 10u);
}

TEST(ThreadPool, LowestIndexedChunkExceptionWins) {
  ThreadPool pool(4);
  for (int repeat = 0; repeat < 8; ++repeat) {
    try {
      // 4 lanes over [0, 8) -> chunks of 2; every chunk from lo >= 2 throws.
      // The rethrown error must always be chunk 1's (lo == 2), regardless of
      // completion order.
      pool.parallel_for(0, 8, [](std::size_t lo, std::size_t) {
        if (lo >= 2) {
          throw std::runtime_error("chunk " + std::to_string(lo));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "chunk 2");
    }
  }
}

TEST(ThreadPool, ReusableAfterExceptionAndDrain) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(0, 12,
                                 [](std::size_t, std::size_t) {
                                   throw std::logic_error("boom");
                                 }),
               std::logic_error);
  // The pool must still schedule fresh work correctly.
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(0, 100, [&](std::size_t lo, std::size_t hi) {
    std::size_t local = 0;
    for (std::size_t i = lo; i < hi; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitRunsInlineOnSizeOnePool) {
  ThreadPool pool(1);
  bool ran = false;
  auto future = pool.submit([&] { ran = true; });
  // No workers: the task must have executed before submit returned.
  EXPECT_TRUE(ran);
  future.get();
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(0, 8, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      // A nested fan-out from inside a chunk body must complete inline on
      // pool workers (and may fan out again on the caller lane).
      pool.parallel_for(i * 8, (i + 1) * 8,
                        [&](std::size_t nlo, std::size_t nhi) {
                          for (std::size_t j = nlo; j < nhi; ++j) {
                            hits[j].fetch_add(1);
                          }
                        });
    }
  });
  for (std::size_t j = 0; j < 64; ++j) {
    EXPECT_EQ(hits[j].load(), 1) << "j=" << j;
  }
}

TEST(ThreadPool, GlobalPoolResizes) {
  const std::size_t saved = global_threads();
  set_global_threads(3);
  EXPECT_EQ(global_threads(), 3u);
  EXPECT_EQ(global_pool().size(), 3u);
  set_global_threads(1);
  EXPECT_EQ(global_threads(), 1u);
  set_global_threads(saved);
}

TEST(ThreadPool, ManySmallRoundsReuseWorkers) {
  // Drain/refill churn: many tiny parallel_for rounds back to back.
  ThreadPool pool(4);
  std::vector<long> data(256, 0);
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(0, data.size(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) ++data[i];
    });
  }
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i], 200) << "i=" << i;
  }
}

}  // namespace
}  // namespace spca
