// Bit-equality of the parallelized hot paths: for every pool size the
// results must be byte-identical to the serial (threads = 1) execution —
// the parallel layer's core guarantee (static chunking + unchanged per-entry
// accumulation order).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "../helpers.hpp"
#include "dist/distributed_detector.hpp"
#include "dist/local_monitor.hpp"
#include "dist/message.hpp"
#include "dist/sim_network.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "linalg/stats.hpp"
#include "par/thread_pool.hpp"
#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"

namespace spca {
namespace {

using testing::small_topology;
using testing::small_trace;

constexpr std::size_t kThreadSweep[] = {1, 2, 7};

/// Restores the global pool size after each test.
class ParallelEquivalence : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = global_threads(); }
  void TearDown() override { set_global_threads(saved_); }

 private:
  std::size_t saved_ = 1;
};

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Xoshiro256 gen(seed);
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = standard_normal(gen);
  }
  return m;
}

void expect_bit_equal(const Matrix& a, const Matrix& b,
                      const char* what, std::size_t threads) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      // EXPECT_EQ on doubles is exact comparison — that is the point.
      EXPECT_EQ(a(i, j), b(i, j))
          << what << " differs at (" << i << "," << j << ") with threads="
          << threads;
    }
  }
}

TEST_F(ParallelEquivalence, BlockedMultiplyMatchesSerialBitwise) {
  // Sizes past the inline-grain threshold so the pool actually engages.
  const Matrix a = random_matrix(210, 190, 1);
  const Matrix b = random_matrix(190, 230, 2);
  set_global_threads(1);
  const Matrix reference = multiply(a, b);
  for (const std::size_t threads : kThreadSweep) {
    set_global_threads(threads);
    expect_bit_equal(multiply(a, b), reference, "multiply", threads);
  }
}

TEST_F(ParallelEquivalence, GramMatchesSerialBitwise) {
  const Matrix a = random_matrix(600, 90, 3);
  set_global_threads(1);
  const Matrix reference = gram(a);
  for (const std::size_t threads : kThreadSweep) {
    set_global_threads(threads);
    expect_bit_equal(gram(a), reference, "gram", threads);
  }
}

TEST_F(ParallelEquivalence, QrMatchesSerialBitwise) {
  const Matrix a = random_matrix(300, 80, 4);
  set_global_threads(1);
  const Qr reference = qr(a);
  for (const std::size_t threads : kThreadSweep) {
    set_global_threads(threads);
    const Qr factored = qr(a);
    expect_bit_equal(factored.q, reference.q, "qr.q", threads);
    expect_bit_equal(factored.r, reference.r, "qr.r", threads);
  }
}

TEST_F(ParallelEquivalence, CenteringMatchesSerialBitwise) {
  const Matrix y = random_matrix(500, 120, 5);
  set_global_threads(1);
  const Vector mean_ref = column_means(y);
  const Matrix centered_ref = center_columns(y);
  for (const std::size_t threads : kThreadSweep) {
    set_global_threads(threads);
    const Vector mean = column_means(y);
    for (std::size_t j = 0; j < mean.size(); ++j) {
      EXPECT_EQ(mean[j], mean_ref[j]) << "threads=" << threads;
    }
    expect_bit_equal(center_columns(y), centered_ref, "center_columns",
                     threads);
  }
}

/// Drives one LocalMonitor over `intervals` intervals of deterministic
/// volumes, then pulls one sketch response; returns its payload.
std::vector<double> monitor_response_payload(std::size_t intervals) {
  constexpr NodeId kMonitorId = 1;
  const ProjectionSource source(ProjectionKind::kTugOfWar, 11);
  std::vector<FlowId> flows(16);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    flows[i] = static_cast<FlowId>(i);
  }
  SimNetwork network;
  LocalMonitor monitor(kMonitorId, flows, /*window=*/32, /*epsilon=*/0.05,
                       /*sketch_rows=*/8, source);
  Xoshiro256 gen(17);
  for (std::size_t t = 0; t < intervals; ++t) {
    for (const FlowId flow : flows) {
      monitor.ingest_volume(flow, 1e8 + 1e7 * standard_normal(gen));
    }
    monitor.end_interval(static_cast<std::int64_t>(t), network);
    (void)network.drain(kNocId);  // consume the volume report
  }
  Message request;
  request.type = MessageType::kSketchRequest;
  request.from = kNocId;
  request.to = kMonitorId;
  request.interval = static_cast<std::int64_t>(intervals - 1);
  network.send(request);
  monitor.handle_mail(network);
  const std::vector<Message> responses = network.drain(kNocId);
  EXPECT_EQ(responses.size(), 1u);
  return responses.empty() ? std::vector<double>{} : responses[0].values;
}

TEST_F(ParallelEquivalence, MonitorIntervalCloseAndResponseBitwise) {
  set_global_threads(1);
  const std::vector<double> reference = monitor_response_payload(48);
  ASSERT_FALSE(reference.empty());
  for (const std::size_t threads : kThreadSweep) {
    set_global_threads(threads);
    const std::vector<double> payload = monitor_response_payload(48);
    ASSERT_EQ(payload.size(), reference.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < payload.size(); ++i) {
      EXPECT_EQ(payload[i], reference[i])
          << "sketch response differs at " << i << " with threads=" << threads;
    }
  }
}

/// Runs the full distributed deployment and returns the per-interval
/// (distance, threshold, alarm) triples.
std::vector<double> distributed_trajectory(const TraceSet& trace,
                                           bool hosted) {
  SketchDetectorConfig config;
  config.window = 32;
  config.epsilon = 0.01;
  config.sketch_rows = 8;
  config.rank_policy = RankPolicy::fixed(3);
  config.seed = 7;
  DistributedDetector detector(trace.num_flows(), 4, config, hosted);
  std::vector<double> out;
  for (std::size_t t = 0; t < trace.num_intervals(); ++t) {
    const Detection det =
        detector.observe(static_cast<std::int64_t>(t), trace.row(t));
    out.push_back(det.distance);
    out.push_back(det.threshold);
    out.push_back(det.alarm ? 1.0 : 0.0);
  }
  return out;
}

TEST_F(ParallelEquivalence, NocAssemblyAndDetectionBitwise) {
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 48, 1);
  for (const bool hosted : {false, true}) {
    set_global_threads(1);
    const std::vector<double> reference = distributed_trajectory(trace, hosted);
    for (const std::size_t threads : kThreadSweep) {
      set_global_threads(threads);
      const std::vector<double> run = distributed_trajectory(trace, hosted);
      ASSERT_EQ(run.size(), reference.size());
      for (std::size_t i = 0; i < run.size(); ++i) {
        EXPECT_EQ(run[i], reference[i])
            << "trajectory differs at " << i << " with threads=" << threads
            << " hosted=" << hosted;
      }
    }
  }
}

}  // namespace
}  // namespace spca
