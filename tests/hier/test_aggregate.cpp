// Aggregation codec properties (dist/aggregate.hpp): the contiguous-block
// partition, and the bit-stability of the merge — any arrival order and any
// region partition of the same per-monitor messages must serialize to the
// same bytes once merged, which is the property that makes the hierarchy
// invisible to the detection trajectory.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "dist/aggregate.hpp"
#include "dist/message.hpp"
#include "rand/xoshiro256.hpp"

namespace spca {
namespace {

/// A deterministic volume report from `monitor` carrying its flows.
Message volume_report(NodeId monitor, std::int64_t interval,
                      std::vector<std::uint32_t> flows) {
  Message msg;
  msg.type = MessageType::kVolumeReport;
  msg.from = monitor;
  msg.interval = interval;
  msg.ids = std::move(flows);
  for (const std::uint32_t id : msg.ids) {
    msg.values.push_back(static_cast<double>(monitor) * 1000.0 + id);
  }
  return msg;
}

/// A deterministic sketch response: [mean, count, z_1..z_rows] per flow.
Message sketch_response(NodeId monitor, std::int64_t interval,
                        std::vector<std::uint32_t> flows,
                        std::size_t sketch_rows) {
  Message msg;
  msg.type = MessageType::kSketchResponse;
  msg.from = monitor;
  msg.interval = interval;
  msg.ids = std::move(flows);
  for (const std::uint32_t id : msg.ids) {
    for (std::size_t r = 0; r < sketch_rows + 2; ++r) {
      msg.values.push_back(static_cast<double>(monitor) +
                           static_cast<double>(id) * 0.25 +
                           static_cast<double>(r) * 0.125);
    }
  }
  return msg;
}

TEST(Aggregate, RegionNodeIdsAreTheirOwnSpace) {
  EXPECT_EQ(region_node_id(0), kRegionBase);
  EXPECT_EQ(region_index(region_node_id(7)), 7u);
  EXPECT_TRUE(is_region_node(region_node_id(0)));
  EXPECT_FALSE(is_region_node(kNocId));
  EXPECT_FALSE(is_region_node(NodeId{1}));
  EXPECT_FALSE(is_region_node(NodeId{0xFFFF}));

  const std::vector<NodeId> ids = region_node_ids(3);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], region_node_id(0));
  EXPECT_EQ(ids[2], region_node_id(2));
}

TEST(Aggregate, PartitionCoversEveryMonitorExactlyOnce) {
  for (const std::size_t k : {1u, 2u, 5u, 9u, 200u}) {
    for (std::size_t regions = 1; regions <= std::min<std::size_t>(k, 7);
         ++regions) {
      std::vector<NodeId> covered;
      for (std::size_t r = 0; r < regions; ++r) {
        const std::vector<NodeId> shard = region_monitor_ids(k, regions, r);
        EXPECT_FALSE(shard.empty()) << "k=" << k << " R=" << regions;
        EXPECT_TRUE(std::is_sorted(shard.begin(), shard.end()));
        for (const NodeId id : shard) {
          covered.push_back(id);
          EXPECT_EQ(region_of_monitor(k, regions, id), r)
              << "monitor " << id << " k=" << k << " R=" << regions;
        }
      }
      // Contiguous blocks in region order concatenate to exactly 1..k.
      std::vector<NodeId> expected(k);
      std::iota(expected.begin(), expected.end(), NodeId{1});
      EXPECT_EQ(covered, expected) << "k=" << k << " R=" << regions;
    }
  }
}

TEST(Aggregate, PartitionRejectsDegenerateRegionCounts) {
  EXPECT_THROW((void)region_monitor_ids(4, 0, 0), InputError);
  EXPECT_THROW((void)region_monitor_ids(4, 5, 0), InputError);
  EXPECT_THROW((void)region_of_monitor(4, 0, 1), InputError);
}

TEST(Aggregate, MergeConcatenatesInSortedSenderOrder) {
  // Parts arrive 3, 1, 2 — the merge must still read 1 | 2 | 3.
  std::vector<Message> parts;
  parts.push_back(volume_report(3, 5, {20, 23}));
  parts.push_back(volume_report(1, 5, {0, 3}));
  parts.push_back(volume_report(2, 5, {11}));
  const Message merged =
      merge_aggregate(std::move(parts), region_node_id(0), kNocId);

  EXPECT_EQ(merged.type, MessageType::kAggregate);
  EXPECT_EQ(merged.from, region_node_id(0));
  EXPECT_EQ(merged.to, kNocId);
  EXPECT_EQ(merged.interval, 5);
  const std::vector<std::uint32_t> expected_ids = {0, 3, 11, 20, 23};
  EXPECT_EQ(merged.ids, expected_ids);
  EXPECT_EQ(merged.values[0], 1000.0);   // monitor 1, flow 0
  EXPECT_EQ(merged.values[2], 2011.0);   // monitor 2, flow 11
  EXPECT_EQ(merged.values[3], 3020.0);   // monitor 3, flow 20
}

TEST(Aggregate, MergeIsByteIdenticalUnderAnyArrivalOrder) {
  // Satellite property, volume half: every permutation of the shard's
  // reports merges to the same serialized bytes.
  const std::vector<Message> canonical = {
      volume_report(1, 9, {0, 4}), volume_report(2, 9, {1, 5}),
      volume_report(3, 9, {2}), volume_report(4, 9, {3, 6, 7})};
  const std::vector<std::byte> reference = serialize(
      merge_aggregate(canonical, region_node_id(1), kNocId));

  std::vector<std::size_t> order = {0, 1, 2, 3};
  do {
    std::vector<Message> shuffled;
    for (const std::size_t i : order) shuffled.push_back(canonical[i]);
    EXPECT_EQ(serialize(merge_aggregate(std::move(shuffled),
                                        region_node_id(1), kNocId)),
              reference);
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(Aggregate, SketchMergeIsByteIdenticalUnderRandomShuffles) {
  // Satellite property, sketch half (the merged Z-hat): random shuffles of
  // a wider shard all serialize identically.
  const std::size_t rows = 6;
  std::vector<Message> canonical;
  for (NodeId id = 1; id <= 8; ++id) {
    canonical.push_back(sketch_response(id, 17, {id - 1, id + 7}, rows));
  }
  const std::vector<std::byte> reference = serialize(
      merge_aggregate(canonical, region_node_id(0), kNocId));

  Xoshiro256 prng(0xA66u);
  std::vector<Message> shuffled = canonical;
  for (int round = 0; round < 32; ++round) {
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[prng() % i]);  // Fisher-Yates
    }
    EXPECT_EQ(serialize(merge_aggregate(shuffled, region_node_id(0), kNocId)),
              reference)
        << "shuffle round " << round;
  }
}

TEST(Aggregate, AnyPartitionUnwrapsToTheSameFlatSequence) {
  // Satellite property, partition half: splitting 6 monitors over R regions,
  // merging each shard, and unwrapping the aggregates in region order must
  // reproduce one identical flat (ids, values) sequence for every R — the
  // root's view is partition-independent.
  const std::size_t k = 6;
  const std::size_t rows = 4;
  std::vector<Message> responses;
  for (NodeId id = 1; id <= k; ++id) {
    responses.push_back(sketch_response(id, 3, {id * 2u, id * 2u + 1u}, rows));
  }

  std::vector<std::uint32_t> flat_ids;
  std::vector<double> flat_values;
  for (const Message& msg : responses) {
    flat_ids.insert(flat_ids.end(), msg.ids.begin(), msg.ids.end());
    flat_values.insert(flat_values.end(), msg.values.begin(),
                       msg.values.end());
  }

  for (std::size_t regions = 1; regions <= k; ++regions) {
    std::vector<std::uint32_t> ids;
    std::vector<double> values;
    for (std::size_t r = 0; r < regions; ++r) {
      std::vector<Message> shard;
      for (const NodeId id : region_monitor_ids(k, regions, r)) {
        shard.push_back(responses[id - 1]);
      }
      const Message unwrapped = unwrap_aggregate(
          merge_aggregate(std::move(shard), region_node_id(r), kNocId),
          MessageType::kSketchResponse, rows);
      EXPECT_EQ(unwrapped.type, MessageType::kSketchResponse);
      EXPECT_EQ(unwrapped.interval, 3);
      ids.insert(ids.end(), unwrapped.ids.begin(), unwrapped.ids.end());
      values.insert(values.end(), unwrapped.values.begin(),
                    unwrapped.values.end());
    }
    EXPECT_EQ(ids, flat_ids) << "R=" << regions;
    EXPECT_EQ(values, flat_values) << "R=" << regions;
  }
}

TEST(Aggregate, MergeRejectsMalformedShards) {
  const auto merge_one = [](std::vector<Message> parts) {
    return merge_aggregate(std::move(parts), region_node_id(0), kNocId);
  };
  // Empty shard.
  EXPECT_THROW((void)merge_one({}), ProtocolError);
  // Mixed message types.
  EXPECT_THROW((void)merge_one({volume_report(1, 0, {0}),
                                sketch_response(2, 0, {1}, 4)}),
               ProtocolError);
  // Mixed intervals.
  EXPECT_THROW((void)merge_one({volume_report(1, 0, {0}),
                                volume_report(2, 1, {1})}),
               ProtocolError);
  // Duplicate sender.
  EXPECT_THROW((void)merge_one({volume_report(1, 0, {0}),
                                volume_report(1, 0, {1})}),
               ProtocolError);
  // Empty payload.
  EXPECT_THROW((void)merge_one({volume_report(1, 0, {})}), ProtocolError);
  // A type that is not mergeable.
  Message request;
  request.type = MessageType::kSketchRequest;
  request.from = 1;
  request.ids = {0};
  request.values = {0.0};
  EXPECT_THROW((void)merge_one({request}), ProtocolError);
}

TEST(Aggregate, ShapeDistinguishesTheInnerKinds) {
  const std::size_t rows = 5;
  const Message volumes = merge_aggregate(
      {volume_report(1, 2, {0, 1}), volume_report(2, 2, {2})},
      region_node_id(0), kNocId);
  const Message sketches = merge_aggregate(
      {sketch_response(1, 2, {0, 1}, rows), sketch_response(2, 2, {2}, rows)},
      region_node_id(0), kNocId);

  EXPECT_TRUE(aggregate_shape_is(volumes, MessageType::kVolumeReport, rows));
  EXPECT_FALSE(aggregate_shape_is(volumes, MessageType::kSketchResponse,
                                  rows));
  EXPECT_TRUE(aggregate_shape_is(sketches, MessageType::kSketchResponse,
                                 rows));
  EXPECT_FALSE(aggregate_shape_is(sketches, MessageType::kVolumeReport,
                                  rows));

  // A non-aggregate never matches, whatever its payload looks like.
  EXPECT_FALSE(aggregate_shape_is(volume_report(1, 2, {0}),
                                  MessageType::kVolumeReport, rows));
}

TEST(Aggregate, UnwrapRoundTripsAndValidates) {
  const std::size_t rows = 5;
  const std::vector<Message> shard = {sketch_response(1, 7, {0}, rows),
                                      sketch_response(2, 7, {1}, rows)};
  const Message agg = merge_aggregate(shard, region_node_id(0), kNocId);
  const Message unwrapped =
      unwrap_aggregate(agg, MessageType::kSketchResponse, rows);
  EXPECT_EQ(unwrapped.type, MessageType::kSketchResponse);
  EXPECT_EQ(unwrapped.from, region_node_id(0));
  EXPECT_EQ(unwrapped.to, kNocId);
  EXPECT_EQ(unwrapped.interval, 7);
  EXPECT_EQ(unwrapped.ids, agg.ids);
  EXPECT_EQ(unwrapped.values, agg.values);

  // Wrong inner kind, wrong outer type, and a broken shape all throw.
  EXPECT_THROW((void)unwrap_aggregate(agg, MessageType::kVolumeReport, rows),
               ProtocolError);
  EXPECT_THROW((void)unwrap_aggregate(shard[0], MessageType::kSketchResponse,
                                      rows),
               ProtocolError);
  Message broken = agg;
  broken.values.pop_back();
  EXPECT_THROW(
      (void)unwrap_aggregate(broken, MessageType::kSketchResponse, rows),
      ProtocolError);
}

}  // namespace
}  // namespace spca
