// Loopback end-to-end of the 2-level hierarchy: a root NocDaemon, a tier of
// RegionalDaemons, and the shard monitors as real TcpTransport endpoints on
// 127.0.0.1 must reproduce the flat SimNetwork reference bit for bit,
// survive a regional NOC kill + restart mid-run via the SPCR snapshot, and
// serve the regional status endpoint live.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <exception>
#include <filesystem>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/aggregate.hpp"
#include "hier/hier_scenario.hpp"
#include "hier/regional_daemon.hpp"
#include "net/monitor_daemon.hpp"
#include "net/noc_daemon.hpp"
#include "net/scenario.hpp"
#include "net/socket.hpp"

namespace spca {
namespace {

using namespace std::chrono_literals;

constexpr std::size_t kRegions = 2;

NetScenarioConfig small_scenario() {
  NetScenarioConfig config;
  config.topology = "diamond";
  config.intervals = 40;
  config.window = 12;
  config.sketch_rows = 8;
  config.monitors = 4;
  config.seed = 7;
  config.anomalies = 3;
  return config;
}

RetryPolicy fast_retry() {
  RetryPolicy retry;
  retry.max_attempts = 400;
  retry.connect_timeout = 1000ms;
  retry.backoff_initial = 5ms;
  retry.backoff_max = 50ms;
  return retry;
}

RegionalDaemonConfig region_config(const NetScenarioConfig& scenario,
                                   std::size_t region,
                                   std::uint16_t root_port) {
  RegionalDaemonConfig config;
  config.scenario = scenario;
  config.regions = kRegions;
  config.region = region;
  config.listen_port = 0;
  config.root_host = "127.0.0.1";
  config.root_port = root_port;
  config.retry = fast_retry();
  config.io_timeout = 20000ms;
  config.interval_deadline = 30000ms;
  return config;
}

MonitorDaemonConfig monitor_config(const NetScenarioConfig& scenario,
                                   NodeId id, std::uint16_t region_port) {
  MonitorDaemonConfig config;
  config.scenario = scenario;
  config.monitor_id = id;
  config.noc_host = "127.0.0.1";
  config.noc_port = region_port;
  config.upstream_id = region_node_id(
      region_of_monitor(scenario.monitors, kRegions, id));
  config.retry = fast_retry();
  config.io_timeout = 20000ms;
  return config;
}

void run_monitor(MonitorDaemonConfig config, MonitorDaemonResult& result,
                 std::exception_ptr& error) {
  try {
    MonitorDaemon daemon(std::move(config));
    result = daemon.run();
  } catch (...) {
    error = std::current_exception();
  }
}

void expect_matches_reference(const ScenarioRun& run,
                              const ScenarioRun& reference) {
  EXPECT_EQ(run.alarm_intervals, reference.alarm_intervals);
  ASSERT_EQ(run.distances.size(), reference.distances.size());
  if (!reference.distances.empty()) {
    EXPECT_EQ(std::memcmp(run.distances.data(), reference.distances.data(),
                          reference.distances.size() * sizeof(double)),
              0);
  }
}

/// The moving parts of one loopback hierarchy below the root: the regional
/// daemons (started, ports bound) and one thread per monitor.
struct Tier {
  std::vector<std::unique_ptr<RegionalDaemon>> regions;
  std::vector<std::uint16_t> region_ports;
  std::vector<std::thread> threads;
  std::vector<RegionalDaemonResult> region_results;
  std::vector<MonitorDaemonResult> monitor_results;
  std::vector<std::exception_ptr> errors;

  void join_and_rethrow() {
    for (std::thread& t : threads) t.join();
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }
};

/// Starts kRegions regional daemons against `root_port`, then the monitor
/// threads dialing them. `mutate_region` can adjust a region's config (kill
/// schedules, status ports) before the daemon starts. `tier` is an
/// out-param (not a return value) because the spawned threads hold
/// references into it.
void start_tier(
    Tier& tier, const NetScenarioConfig& config, std::uint16_t root_port,
    const std::function<void(RegionalDaemonConfig&)>& mutate_region = {}) {
  tier.region_results.resize(kRegions);
  tier.monitor_results.resize(config.monitors);
  tier.errors.resize(kRegions + config.monitors);

  for (std::size_t r = 0; r < kRegions; ++r) {
    RegionalDaemonConfig rc = region_config(config, r, root_port);
    if (mutate_region) mutate_region(rc);
    tier.regions.push_back(std::make_unique<RegionalDaemon>(rc));
    tier.regions.back()->start();
    tier.region_ports.push_back(tier.regions.back()->bound_port());
  }
  for (std::size_t r = 0; r < kRegions; ++r) {
    RegionalDaemon* daemon = tier.regions[r].get();
    tier.threads.emplace_back([daemon, r, &tier] {
      try {
        tier.region_results[r] = daemon->run();
      } catch (...) {
        tier.errors[r] = std::current_exception();
      }
    });
  }
  for (std::size_t k = 0; k < config.monitors; ++k) {
    const NodeId id = static_cast<NodeId>(k + 1);
    const std::uint16_t port =
        tier.region_ports[region_of_monitor(config.monitors, kRegions, id)];
    tier.threads.emplace_back(run_monitor, monitor_config(config, id, port),
                              std::ref(tier.monitor_results[k]),
                              std::ref(tier.errors[kRegions + k]));
  }
}

TEST(HierDaemons, TwoLevelLoopbackMatchesTheFlatSimReferenceBitForBit) {
  const NetScenarioConfig config = small_scenario();
  const NetScenario scenario = build_scenario(config);
  const ScenarioRun reference = run_scenario_reference(scenario);

  NocDaemonConfig noc_config;
  noc_config.scenario = config;
  noc_config.listen_port = 0;
  noc_config.regions = kRegions;
  noc_config.interval_deadline = 30000ms;
  NocDaemon noc(noc_config);
  noc.start();

  Tier tier;
  start_tier(tier, config, noc.bound_port());
  const ScenarioRun run = noc.run();
  tier.join_and_rethrow();

  expect_matches_reference(run, reference);
  EXPECT_EQ(noc.reconnects(), 0u);

  // Every region relayed the whole scenario and actually merged: one
  // aggregate per interval plus one per sketch pull.
  for (std::size_t r = 0; r < kRegions; ++r) {
    EXPECT_EQ(tier.region_results[r].next_interval,
              static_cast<std::int64_t>(config.intervals));
    EXPECT_GT(tier.region_results[r].merges, config.intervals);
    EXPECT_FALSE(tier.region_results[r].restored_from_checkpoint);
  }
  for (const MonitorDaemonResult& result : tier.monitor_results) {
    EXPECT_EQ(result.intervals_reported,
              static_cast<std::int64_t>(config.intervals));
  }

  // Deployment-wide per-level accounting: the monitor tier's sends are the
  // flat deployment's upstream messages, the region tier's sends are the
  // aggregates, and the whole tree's request fan-out is consistent.
  NetworkStats total = run.stats;
  for (const RegionalDaemonResult& r : tier.region_results) total += r.stats;
  for (const MonitorDaemonResult& m : tier.monitor_results) total += m.stats;
  const HierWireAccounting acc = hier_wire_accounting(total);
  ASSERT_EQ(acc.region_to_root_messages % kRegions, 0u);
  const std::uint64_t pulls =
      acc.region_to_root_messages / kRegions - config.intervals;
  EXPECT_EQ(acc.monitor_to_region_messages,
            config.monitors * (config.intervals + pulls));
  EXPECT_EQ(acc.request_messages, pulls * (kRegions + config.monitors));
}

TEST(HierDaemons, RegionalKillAndRestartRecoversBitIdentically) {
  const NetScenarioConfig config = small_scenario();
  const NetScenario scenario = build_scenario(config);
  const ScenarioRun reference = run_scenario_reference(scenario);

  // Kill point: past warm-up, so sketch pulls have happened through the
  // dying incarnation.
  const auto kill_at = static_cast<std::int64_t>(config.window + 6);
  const std::string checkpoint_dir =
      (std::filesystem::temp_directory_path() / "spca_hier_region_kill")
          .string();
  std::filesystem::remove_all(checkpoint_dir);

  NocDaemonConfig noc_config;
  noc_config.scenario = config;
  noc_config.listen_port = 0;
  noc_config.regions = kRegions;
  noc_config.interval_deadline = 30000ms;
  NocDaemon noc(noc_config);
  noc.start();
  const std::uint16_t root_port = noc.bound_port();

  // Region 0's first incarnation winds down cleanly after relaying
  // intervals < kill_at; its snapshot seeds the second incarnation on the
  // same port, which the shard's monitors redial transparently.
  Tier tier;
  start_tier(tier, config, root_port,
             [&](RegionalDaemonConfig& rc) {
               if (rc.region != 0) return;
               rc.checkpoint_dir = checkpoint_dir;
               rc.checkpoint_every = 4;
               rc.last_interval = kill_at;
             });

  RegionalDaemonResult reborn_result;
  std::exception_ptr reborn_error;
  std::thread reborn([&] {
    try {
      // Wait for the first incarnation to finish, then tear it down (which
      // frees the listen port) and take over on the same port.
      tier.threads[0].join();
      tier.regions[0].reset();
      RegionalDaemonConfig rc = region_config(config, 0, root_port);
      rc.listen_port = tier.region_ports[0];
      rc.checkpoint_dir = checkpoint_dir;
      rc.checkpoint_every = 4;
      RegionalDaemon daemon(rc);
      daemon.start();
      reborn_result = daemon.run();
    } catch (...) {
      reborn_error = std::current_exception();
    }
  });

  const ScenarioRun run = noc.run();
  reborn.join();
  for (std::size_t i = 1; i < tier.threads.size(); ++i) {
    tier.threads[i].join();
  }
  for (const std::exception_ptr& e : tier.errors) {
    if (e) std::rethrow_exception(e);
  }
  if (reborn_error) std::rethrow_exception(reborn_error);

  // The trajectory is unchanged by the kill/restart...
  expect_matches_reference(run, reference);
  // ...the second incarnation resumed from the SPCR snapshot where the
  // first stopped...
  EXPECT_TRUE(reborn_result.restored_from_checkpoint);
  EXPECT_EQ(tier.region_results[0].next_interval, kill_at);
  EXPECT_EQ(reborn_result.next_interval,
            static_cast<std::int64_t>(config.intervals));
  // ...and the untouched region never noticed.
  EXPECT_EQ(tier.region_results[1].next_interval,
            static_cast<std::int64_t>(config.intervals));
  EXPECT_FALSE(tier.region_results[1].restored_from_checkpoint);

  std::filesystem::remove_all(checkpoint_dir);
}

/// One status-endpoint HTTP GET, reading until the server's HTTP/1.0 close.
std::string http_get(int port, const std::string& path) {
  TcpStream stream = TcpStream::connect(
      "127.0.0.1", static_cast<std::uint16_t>(port), 5000ms);
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  stream.send_all(reinterpret_cast<const std::byte*>(request.data()),
                  request.size(), 5000ms);
  std::string response;
  std::byte buf[4096];
  for (;;) {
    const std::ptrdiff_t n = stream.recv_some(buf, sizeof(buf), 10000ms);
    if (n <= 0) break;
    response.append(reinterpret_cast<const char*>(buf),
                    static_cast<std::size_t>(n));
  }
  return response;
}

TEST(HierDaemons, RegionalStatusEndpointServesLiveWithoutPerturbation) {
  const NetScenarioConfig config = small_scenario();
  const NetScenario scenario = build_scenario(config);
  const ScenarioRun reference = run_scenario_reference(scenario);

  NocDaemonConfig noc_config;
  noc_config.scenario = config;
  noc_config.listen_port = 0;
  noc_config.regions = kRegions;
  noc_config.interval_deadline = 30000ms;
  NocDaemon noc(noc_config);
  noc.start();

  std::promise<int> port_promise;
  Tier tier;
  start_tier(tier, config, noc.bound_port(),
             [&](RegionalDaemonConfig& rc) {
               if (rc.region != 0) return;
               rc.status_port = 0;
               rc.on_status_port = [&port_promise](int port) {
                 port_promise.set_value(port);
               };
             });

  std::string healthz, metrics_json;
  std::thread scraper([&] {
    std::future<int> port = port_promise.get_future();
    if (port.wait_for(30s) != std::future_status::ready) return;
    const int p = port.get();
    healthz = http_get(p, "/healthz");
    metrics_json = http_get(p, "/metrics.json");
  });

  const ScenarioRun run = noc.run();
  tier.join_and_rethrow();
  scraper.join();

  expect_matches_reference(run, reference);
  EXPECT_NE(healthz.find("\"role\":\"region\""), std::string::npos);
  EXPECT_NE(healthz.find("\"region\":0"), std::string::npos);
  EXPECT_NE(metrics_json.find("HTTP/1.0 200 OK"), std::string::npos);
}

}  // namespace
}  // namespace spca
