// Hierarchical sim runner (hier/hier_scenario.hpp): re-routing the scenario
// through a tier of regional NOCs must leave the detection trajectory
// bit-identical to the flat run_scenario_reference for EVERY region count —
// the NOC's verdicts cannot depend on how the monitors are partitioned.
// Also pins the per-level wire accounting of the 200-monitor scale-out run.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "hier/hier_scenario.hpp"
#include "net/scenario.hpp"

namespace spca {
namespace {

NetScenarioConfig small_config(const std::string& topology,
                               std::size_t monitors) {
  NetScenarioConfig config;
  config.topology = topology;
  config.intervals = 40;
  config.window = 12;
  config.sketch_rows = 8;
  config.monitors = monitors;
  config.seed = 7;
  config.anomalies = 3;
  return config;
}

/// Bit-exact trajectory equality: alarms and the raw distance bytes.
void expect_bit_identical(const ScenarioRun& run,
                          const ScenarioRun& reference) {
  EXPECT_EQ(run.alarm_intervals, reference.alarm_intervals);
  ASSERT_EQ(run.distances.size(), reference.distances.size());
  if (!reference.distances.empty()) {
    EXPECT_EQ(std::memcmp(run.distances.data(), reference.distances.data(),
                          reference.distances.size() * sizeof(double)),
              0);
  }
}

TEST(HierSim, EveryPartitionOfDiamondMatchesTheFlatReference) {
  const NetScenario scenario = build_scenario(small_config("diamond", 4));
  const ScenarioRun reference = run_scenario_reference(scenario);
  ASSERT_FALSE(reference.distances.empty());

  for (std::size_t regions = 1; regions <= 4; ++regions) {
    const ScenarioRun run = run_hier_scenario_sim(scenario, regions);
    expect_bit_identical(run, reference);
  }
}

TEST(HierSim, NineMonitorAbileneMatchesTheFlatReference) {
  // The ISSUE's flagship configuration: the flat 9-node abilene deployment
  // against its 2-level re-routing.
  const NetScenario scenario = build_scenario(small_config("abilene", 9));
  const ScenarioRun reference = run_scenario_reference(scenario);
  ASSERT_FALSE(reference.distances.empty());

  for (const std::size_t regions : {2u, 3u, 9u}) {
    const ScenarioRun run = run_hier_scenario_sim(scenario, regions);
    expect_bit_identical(run, reference);
  }
}

TEST(HierSim, HierarchyNeverInflatesTheUpstreamMessageCount) {
  // The whole point of the tier: the root sees R aggregates per phase
  // instead of k per-monitor messages.
  const NetScenario scenario = build_scenario(small_config("abilene", 9));
  const ScenarioRun flat = run_scenario_reference(scenario);
  const ScenarioRun hier = run_hier_scenario_sim(scenario, 3);

  const HierWireAccounting acc = hier_wire_accounting(hier.stats);
  // Flat upstream volume/sketch messages vs the hierarchy's aggregates.
  const std::uint64_t flat_upstream =
      flat.stats.messages_by_type[static_cast<std::size_t>(
          MessageType::kVolumeReport)] +
      flat.stats.messages_by_type[static_cast<std::size_t>(
          MessageType::kSketchResponse)];
  EXPECT_LT(acc.region_to_root_messages, flat_upstream);
  // The monitor tier still sends exactly the flat deployment's messages
  // (same payloads, different destination).
  EXPECT_EQ(acc.monitor_to_region_messages, flat_upstream);
}

TEST(HierSim, TwoHundredMonitorFourRegionRunCompletesWithSaneAccounting) {
  // The scale-out smoke of the ISSUE: 200 monitors over a synthetic
  // 15-router topology (225 OD flows), 4 regions. Kept short — the point is
  // the partition arithmetic, the merge plumbing, and the per-level
  // accounting at scale, not the detection statistics.
  NetScenarioConfig config;
  config.topology = "synth15";
  config.intervals = 24;
  config.window = 8;
  config.sketch_rows = 6;
  config.monitors = 200;
  config.seed = 11;
  config.anomalies = 2;
  const NetScenario scenario = build_scenario(config);

  const std::size_t regions = 4;
  const ScenarioRun run = run_hier_scenario_sim(scenario, regions);
  EXPECT_EQ(run.distances.size(), config.intervals - config.window + 1);

  // Per-level accounting must be self-consistent with the protocol: with P
  // sketch pulls, the regions send R aggregates per interval plus R per
  // pull, the monitors k messages per interval plus k per pull, and the
  // request fan-out reaches R regions and then k monitors per pull.
  const HierWireAccounting acc = hier_wire_accounting(run.stats);
  const std::uint64_t k = config.monitors;
  const std::uint64_t intervals = config.intervals;
  ASSERT_EQ(acc.region_to_root_messages % regions, 0u);
  const std::uint64_t pulls = acc.region_to_root_messages / regions -
                              intervals;
  EXPECT_GT(pulls, 0u);
  EXPECT_EQ(acc.monitor_to_region_messages, k * (intervals + pulls));
  EXPECT_EQ(acc.request_messages, pulls * (regions + k));
  EXPECT_GT(acc.monitor_to_region_bytes, 0u);
  EXPECT_GT(acc.region_to_root_bytes, 0u);

  // The three levels plus operator alarms account for every sent byte.
  const std::uint64_t alarm_bytes =
      run.stats.bytes_by_type[static_cast<std::size_t>(MessageType::kAlarm)];
  EXPECT_EQ(acc.monitor_to_region_bytes + acc.region_to_root_bytes +
                acc.request_bytes + alarm_bytes,
            run.stats.bytes);

  // And the 200-monitor hierarchy still matches the flat reference bit for
  // bit — the scale-out does not bend the trajectory.
  const ScenarioRun reference = run_scenario_reference(scenario);
  expect_bit_identical(run, reference);
}

}  // namespace
}  // namespace spca
