// RegionalNoc collection state machine (hier/regional_noc.hpp) driven over
// a SimNetwork, and the regional daemon's 'SPCR' identity/progress snapshot
// codec (hier/regional_daemon.hpp).
#include <gtest/gtest.h>

#include <cstddef>
#include <optional>
#include <vector>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "dist/aggregate.hpp"
#include "dist/sim_network.hpp"
#include "hier/regional_daemon.hpp"
#include "hier/regional_noc.hpp"

namespace spca {
namespace {

constexpr std::size_t kRows = 4;

Message report(NodeId monitor, std::int64_t interval,
               NodeId to = region_node_id(0)) {
  Message msg;
  msg.type = MessageType::kVolumeReport;
  msg.from = monitor;
  msg.to = to;
  msg.interval = interval;
  msg.ids = {monitor * 10u};
  msg.values = {static_cast<double>(monitor)};
  return msg;
}

Message response(NodeId monitor, std::int64_t interval, NodeId to) {
  Message msg = report(monitor, interval, to);
  msg.type = MessageType::kSketchResponse;
  msg.values.assign(kRows + 2, static_cast<double>(monitor));
  return msg;
}

TEST(RegionalNoc, CollectsTheShardAndMergesOnceComplete) {
  SimNetwork sim;
  RegionalNoc region(0, {1, 2, 3}, kRows);
  EXPECT_EQ(region.id(), region_node_id(0));

  sim.send(report(2, 5));
  region.pump(sim);
  EXPECT_EQ(region.reports_ready(), std::nullopt);

  sim.send(report(1, 5));
  sim.send(report(3, 5));
  region.pump(sim);
  ASSERT_EQ(region.reports_ready(), std::optional<std::int64_t>(5));

  const Message merged = region.take_merged_reports(kNocId);
  EXPECT_EQ(merged.type, MessageType::kAggregate);
  EXPECT_EQ(merged.from, region.id());
  EXPECT_EQ(merged.interval, 5);
  const std::vector<std::uint32_t> expected_ids = {10, 20, 30};
  EXPECT_EQ(merged.ids, expected_ids);
  // Taking clears the store for the next interval.
  EXPECT_EQ(region.reports_ready(), std::nullopt);
  EXPECT_EQ(region.merges(), 1u);
}

TEST(RegionalNoc, MixedIntervalsAreNotReadyAndLastWins) {
  SimNetwork sim;
  RegionalNoc region(0, {1, 2}, kRows);

  // Monitor 1 already moved to interval 6 while monitor 2 is still at 5:
  // transient during the advance relay, so not ready.
  sim.send(report(1, 6));
  sim.send(report(2, 5));
  region.pump(sim);
  EXPECT_EQ(region.reports_ready(), std::nullopt);

  // A reconnecting monitor re-sends its current interval; last-wins brings
  // the shard back into agreement.
  sim.send(report(2, 6));
  region.pump(sim);
  EXPECT_EQ(region.reports_ready(), std::optional<std::int64_t>(6));
}

TEST(RegionalNoc, SketchPhaseRoundTrip) {
  SimNetwork sim;
  RegionalNoc region(1, {3, 4}, kRows);

  // Root request arrives, is queued, and fans out to the shard.
  Message request;
  request.type = MessageType::kSketchRequest;
  request.from = kNocId;
  request.to = region.id();
  request.interval = 9;
  sim.send(request);
  region.pump(sim);
  ASSERT_EQ(region.take_sketch_request(), std::optional<std::int64_t>(9));
  EXPECT_EQ(region.take_sketch_request(), std::nullopt);

  region.forward_sketch_request(9, sim);
  for (const NodeId monitor : {3u, 4u}) {
    const std::vector<Message> mail = sim.drain(monitor);
    ASSERT_EQ(mail.size(), 1u);
    EXPECT_EQ(mail[0].type, MessageType::kSketchRequest);
    EXPECT_EQ(mail[0].from, region.id());
    EXPECT_EQ(mail[0].interval, 9);
  }

  sim.send(response(4, 9, region.id()));
  sim.send(response(3, 9, region.id()));
  region.pump(sim);
  ASSERT_EQ(region.responses_ready(), std::optional<std::int64_t>(9));
  const Message merged = region.take_merged_responses(kNocId);
  EXPECT_EQ(merged.values.size(), merged.ids.size() * (kRows + 2));
  EXPECT_TRUE(aggregate_shape_is(merged, MessageType::kSketchResponse,
                                 kRows));
}

TEST(RegionalNoc, RejectsForeignSendersAndMalformedShapes) {
  SimNetwork sim;
  RegionalNoc region(0, {1, 2}, kRows);

  sim.send(report(7, 0));  // not in the shard
  EXPECT_THROW(region.pump(sim), ProtocolError);

  Message bad = report(1, 0);
  bad.values.push_back(0.0);  // shape broken
  sim.send(bad);
  EXPECT_THROW(region.pump(sim), ProtocolError);

  Message agg = report(1, 0);
  agg.type = MessageType::kAggregate;  // a type the tier never receives
  sim.send(agg);
  EXPECT_THROW(region.pump(sim), ProtocolError);
}

TEST(RegionalNoc, RejectsDegenerateShards) {
  EXPECT_THROW(RegionalNoc(0, {}, kRows), ContractViolation);
  EXPECT_THROW(RegionalNoc(0, {1, 1}, kRows), ContractViolation);
  EXPECT_THROW(RegionalNoc(0, {kNocId, 1}, kRows), ContractViolation);
  EXPECT_THROW(RegionalNoc(0, {1, region_node_id(1)}, kRows),
               ContractViolation);
}

TEST(RegionSnapshot, RoundTripsIdentityAndProgress) {
  const std::vector<NodeId> shard = {4, 5, 6};
  const std::vector<std::byte> blob = encode_region_snapshot(3, 1, shard, 17);
  const RegionSnapshot snapshot = decode_region_snapshot(blob);
  EXPECT_EQ(snapshot.regions, 3u);
  EXPECT_EQ(snapshot.region, 1u);
  EXPECT_EQ(snapshot.monitors, shard);
  EXPECT_EQ(snapshot.next_interval, 17);
}

TEST(RegionSnapshot, RejectsCorruptBlobs) {
  std::vector<std::byte> blob = encode_region_snapshot(2, 0, {1, 2}, 3);

  // Truncated.
  std::vector<std::byte> truncated(blob.begin(), blob.end() - 1);
  EXPECT_THROW((void)decode_region_snapshot(truncated), ProtocolError);

  // Trailing garbage.
  std::vector<std::byte> padded = blob;
  padded.push_back(std::byte{0x5A});
  EXPECT_THROW((void)decode_region_snapshot(padded), ProtocolError);

  // Bad magic.
  std::vector<std::byte> bad_magic = blob;
  bad_magic[0] ^= std::byte{0xFF};
  EXPECT_THROW((void)decode_region_snapshot(bad_magic), ProtocolError);

  // Unknown version.
  std::vector<std::byte> bad_version = blob;
  bad_version[4] ^= std::byte{0xFF};
  EXPECT_THROW((void)decode_region_snapshot(bad_version), ProtocolError);

  EXPECT_THROW((void)decode_region_snapshot({}), ProtocolError);
}

}  // namespace
}  // namespace spca
