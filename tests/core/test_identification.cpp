#include "core/identification.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "common/contracts.hpp"
#include "synth/anomaly_injector.hpp"

namespace spca {
namespace {

using testing::flat_trace;
using testing::small_topology;

struct Fixture {
  Topology topo = small_topology();
  TraceSet trace = flat_trace(topo, 256, 9);
  PcaModel model;
  Fixture() { model = PcaModel::from_data(trace.volumes()); }
};

TEST(AnomalyContributions, SharesSumToOneAndSorted) {
  Fixture f;
  Vector probe = f.trace.row(100);
  probe[5] *= 2.0;
  const auto contributions = anomaly_contributions(f.model, probe, 3);
  ASSERT_EQ(contributions.size(), f.trace.num_flows());
  double total_share = 0.0;
  for (std::size_t i = 0; i < contributions.size(); ++i) {
    total_share += contributions[i].share;
    if (i > 0) {
      EXPECT_GE(std::abs(contributions[i - 1].residual),
                std::abs(contributions[i].residual));
    }
  }
  EXPECT_NEAR(total_share, 1.0, 1e-9);
}

TEST(AnomalyContributions, SpikedFlowRanksFirst) {
  Fixture f;
  Vector probe = f.trace.row(120);
  probe[7] *= 2.5;
  const auto contributions = anomaly_contributions(f.model, probe, 3);
  EXPECT_EQ(contributions[0].flow, 7u);
  EXPECT_GT(contributions[0].share, 0.3);
}

TEST(AnomalyContributions, CoordinatedFlowsAllRankHighly) {
  Fixture f;
  Vector probe = f.trace.row(130);
  const std::vector<std::size_t> bumped = {2, 6, 11};
  for (const std::size_t j : bumped) probe[j] *= 1.8;
  const auto contributions = anomaly_contributions(f.model, probe, 3);
  // All three bumped flows must appear in the top five contributors.
  std::size_t found = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    for (const std::size_t j : bumped) {
      if (contributions[i].flow == j) ++found;
    }
  }
  EXPECT_EQ(found, 3u);
}

TEST(TopContributors, CoversRequestedShare) {
  Fixture f;
  Vector probe = f.trace.row(140);
  probe[3] *= 2.0;
  probe[9] *= 1.5;
  const auto top = top_contributors(f.model, probe, 3, 0.8);
  EXPECT_GE(top.size(), 1u);
  EXPECT_LT(top.size(), f.trace.num_flows());
  double covered = 0.0;
  for (const auto& c : top) covered += c.share;
  EXPECT_GE(covered, 0.8 - 1e-9);
}

TEST(TopContributors, FullShareReturnsEverythingNeeded) {
  Fixture f;
  const Vector probe = f.trace.row(150);
  const auto top = top_contributors(f.model, probe, 3, 1.0);
  EXPECT_EQ(top.size(), f.trace.num_flows());
}

TEST(TopContributors, ZeroResidualYieldsSingleEntry) {
  Fixture f;
  // A vector exactly at the column means has zero centered component.
  const auto top =
      top_contributors(f.model, Vector(f.model.column_means()), 3, 0.8);
  EXPECT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].share, 0.0);
}

TEST(TopContributors, ShareValidation) {
  Fixture f;
  const Vector probe = f.trace.row(10);
  EXPECT_THROW((void)top_contributors(f.model, probe, 3, 0.0),
               ContractViolation);
  EXPECT_THROW((void)top_contributors(f.model, probe, 3, 1.5),
               ContractViolation);
}

}  // namespace
}  // namespace spca
