#include "core/sketch_detector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "../helpers.hpp"
#include "common/contracts.hpp"
#include "core/lakhina_detector.hpp"
#include "obs/metrics.hpp"

namespace spca {
namespace {

using testing::small_topology;
using testing::small_trace;

SketchDetectorConfig small_config(std::size_t window, std::size_t l) {
  SketchDetectorConfig config;
  config.window = window;
  config.epsilon = 0.01;
  config.sketch_rows = l;
  config.alpha = 0.01;
  config.rank_policy = RankPolicy::fixed(3);
  config.seed = 99;
  return config;
}

TEST(SketchDetector, WarmupThenReady) {
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 40, 1);
  SketchDetector detector(trace.num_flows(), small_config(32, 16));
  for (std::size_t t = 0; t < 31; ++t) {
    EXPECT_FALSE(
        detector.observe(static_cast<std::int64_t>(t), trace.row(t)).ready);
  }
  EXPECT_TRUE(detector.observe(31, trace.row(31)).ready);
}

TEST(SketchDetector, SketchMatrixHasConfiguredShape) {
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 40, 2);
  SketchDetector detector(trace.num_flows(), small_config(32, 12));
  for (std::size_t t = 0; t < 40; ++t) {
    (void)detector.observe(static_cast<std::int64_t>(t), trace.row(t));
  }
  const Matrix z = detector.sketch_matrix();
  EXPECT_EQ(z.rows(), 12u);
  EXPECT_EQ(z.cols(), trace.num_flows());
  EXPECT_GT(frobenius_norm(z), 0.0);
}

TEST(SketchDetector, MeansTrackTrafficLevel) {
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 64, 3);
  SketchDetector detector(trace.num_flows(), small_config(48, 8));
  for (std::size_t t = 0; t < 64; ++t) {
    (void)detector.observe(static_cast<std::int64_t>(t), trace.row(t));
  }
  const Vector means = detector.sketch_means();
  for (std::size_t j = 0; j < trace.num_flows(); ++j) {
    EXPECT_GT(means[j], 0.0);
  }
}

TEST(SketchDetector, QuietTrafficRarelyAlarms) {
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 220, 4);
  SketchDetectorConfig config = small_config(96, 64);
  SketchDetector detector(trace.num_flows(), config);
  std::size_t alarms = 0, ready = 0;
  for (std::size_t t = 0; t < 220; ++t) {
    const Detection det =
        detector.observe(static_cast<std::int64_t>(t), trace.row(t));
    if (det.ready) {
      ++ready;
      if (det.alarm) ++alarms;
    }
  }
  ASSERT_GT(ready, 0u);
  EXPECT_LT(static_cast<double>(alarms) / static_cast<double>(ready), 0.15);
}

TEST(SketchDetector, DetectsVolumeSpike) {
  const Topology topo = small_topology();
  TraceSet trace = small_trace(topo, 160, 5);
  for (const std::size_t f : {1u, 6u, 9u}) {
    trace.volumes()(150, f) *= 4.0;
  }
  SketchDetector detector(trace.num_flows(), small_config(128, 64));
  Detection at_spike;
  for (std::size_t t = 0; t < 160; ++t) {
    const Detection det =
        detector.observe(static_cast<std::int64_t>(t), trace.row(t));
    if (t == 150) at_spike = det;
  }
  EXPECT_TRUE(at_spike.ready);
  EXPECT_TRUE(at_spike.alarm);
}

TEST(SketchDetector, LazyModeRefreshesOnlyOnSuspicion) {
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 200, 6);
  SketchDetectorConfig lazy = small_config(96, 32);
  lazy.lazy = true;
  SketchDetectorConfig eager = lazy;
  eager.lazy = false;
  SketchDetector lazy_det(trace.num_flows(), lazy);
  SketchDetector eager_det(trace.num_flows(), eager);
  for (std::size_t t = 0; t < 200; ++t) {
    (void)lazy_det.observe(static_cast<std::int64_t>(t), trace.row(t));
    (void)eager_det.observe(static_cast<std::int64_t>(t), trace.row(t));
  }
  // Eager refits every ready interval; lazy only on suspicion.
  EXPECT_LT(lazy_det.model_computations(), eager_det.model_computations());
  EXPECT_EQ(eager_det.model_computations(), 200u - 96u + 1u);
}

TEST(SketchDetector, LazyAlarmTriggersRefreshBeforeAlarming) {
  const Topology topo = small_topology();
  TraceSet trace = small_trace(topo, 140, 7);
  for (std::size_t f = 0; f < 8; ++f) {
    trace.volumes()(130, f) *= 5.0;
  }
  SketchDetector detector(trace.num_flows(), small_config(96, 32));
  Detection at_spike;
  for (std::size_t t = 0; t < 140; ++t) {
    const Detection det =
        detector.observe(static_cast<std::int64_t>(t), trace.row(t));
    if (t == 130) at_spike = det;
  }
  // The spike must have forced a model refresh (lazy re-check protocol).
  EXPECT_TRUE(at_spike.model_refreshed);
  EXPECT_TRUE(at_spike.alarm);
}

TEST(SketchDetector, ApproximatesExactDetectorOnQuietTraffic) {
  // Core claim: with adequate l the sketch verdicts track Lakhina's.
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 260, 8, /*anomalies=*/5,
                                     /*warmup=*/140);
  LakhinaConfig exact_config;
  exact_config.window = 128;
  exact_config.rank_policy = RankPolicy::fixed(3);
  LakhinaDetector exact(trace.num_flows(), exact_config);
  SketchDetectorConfig sketch_config = small_config(128, 96);
  sketch_config.lazy = false;
  SketchDetector sketch(trace.num_flows(), sketch_config);

  std::size_t agreements = 0, total = 0;
  for (std::size_t t = 0; t < 260; ++t) {
    const Detection de =
        exact.observe(static_cast<std::int64_t>(t), trace.row(t));
    const Detection ds =
        sketch.observe(static_cast<std::int64_t>(t), trace.row(t));
    if (de.ready && ds.ready) {
      ++total;
      if (de.alarm == ds.alarm) ++agreements;
    }
  }
  ASSERT_GT(total, 100u);
  EXPECT_GT(static_cast<double>(agreements) / static_cast<double>(total),
            0.85);
}

TEST(SketchDetector, MemoryGrowsSublinearlyInWindow) {
  // Theorem 1's space claim is asymptotic with a 10/epsilon constant in the
  // merge rules, so at laptop-scale windows the honest check is growth rate:
  // multiplying n by 8 must multiply summary bytes by far less than 8.
  const Topology topo = small_topology();
  const auto bytes_for = [&](std::size_t n) {
    const TraceSet trace = small_trace(topo, 2 * n, 9);
    SketchDetectorConfig config = small_config(n, 8);
    config.epsilon = 0.1;
    SketchDetector detector(trace.num_flows(), config);
    for (std::size_t t = 0; t < 2 * n; ++t) {
      (void)detector.observe(static_cast<std::int64_t>(t), trace.row(t));
    }
    return detector.memory_bytes();
  };
  const std::size_t at_1k = bytes_for(1024);
  const std::size_t at_8k = bytes_for(8192);
  EXPECT_LT(static_cast<double>(at_8k), 3.0 * static_cast<double>(at_1k));
}

TEST(SketchDetector, MemoryBytesCountsFixedMembersAndMatchesGauge) {
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 80, 11);
  SketchDetectorConfig config = small_config(64, 16);
  config.lazy = false;  // eager mode refreshes every ready interval
  SketchDetector detector(trace.num_flows(), config);

  // Even before any traffic the total must cover the detector object and
  // the per-flow sketches, not just the histogram buckets.
  EXPECT_GT(detector.memory_bytes(), sizeof(SketchDetector));

  for (std::size_t t = 0; t < 80; ++t) {
    (void)detector.observe(static_cast<std::int64_t>(t), trace.row(t));
  }
  // A fitted model adds its matrices to the footprint.
  EXPECT_GT(detector.memory_bytes(),
            sizeof(SketchDetector) +
                trace.num_flows() * config.sketch_rows * sizeof(double));

  // The last observe() ended in refresh_model(), which mirrors the current
  // footprint into the gauge: both views must agree exactly.
  const double gauge =
      MetricsRegistry::global().gauge("spca.sketch.memory_bytes").value();
  EXPECT_EQ(static_cast<std::size_t>(gauge), detector.memory_bytes());
}

TEST(SketchDetector, ConfigValidation) {
  EXPECT_THROW(SketchDetector(1, small_config(16, 4)), ContractViolation);
  SketchDetectorConfig bad = small_config(16, 0);
  EXPECT_THROW(SketchDetector(4, bad), ContractViolation);
  bad = small_config(1, 4);
  EXPECT_THROW(SketchDetector(4, bad), ContractViolation);
}

TEST(SketchDetector, DistanceProfileMonotone) {
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 80, 10);
  SketchDetector detector(trace.num_flows(), small_config(64, 32));
  for (std::size_t t = 0; t < 80; ++t) {
    (void)detector.observe(static_cast<std::int64_t>(t), trace.row(t));
  }
  const Vector profile = detector.distance_profile();
  for (std::size_t r = 1; r < profile.size(); ++r) {
    EXPECT_LE(profile[r], profile[r - 1] + 1e-9);
  }
}

}  // namespace
}  // namespace spca
