// Detector-level backend equivalence: the warm backend must be
// verdict-identical to exact (bit-comparable alarms and distances), and the
// truncated backends must stay close on a well-conditioned flat trace.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "../helpers.hpp"
#include "core/sketch_detector.hpp"

namespace spca {
namespace {

/// Per-interval verdict trail of one detector run.
struct DetectorRunLite {
  std::vector<bool> ready;
  std::vector<bool> alarms;
  std::vector<double> distances;
};

SketchDetectorConfig base_config(ModelBackendKind kind) {
  SketchDetectorConfig config;
  config.window = 16;
  config.sketch_rows = 12;
  config.rank_policy = RankPolicy::fixed(4);
  config.seed = 99;
  config.backend.kind = kind;
  return config;
}

DetectorRunLite run_with(ModelBackendKind kind, const TraceSet& trace) {
  SketchDetector detector(trace.num_flows(), base_config(kind));
  DetectorRunLite run;
  for (std::int64_t t = 0;
       t < static_cast<std::int64_t>(trace.num_intervals()); ++t) {
    const Detection det =
        detector.observe(t, trace.row(static_cast<std::size_t>(t)));
    run.ready.push_back(det.ready);
    run.alarms.push_back(det.alarm);
    run.distances.push_back(det.distance);
  }
  return run;
}

TEST(BackendEquivalence, WarmVerdictsMatchExactOnFlatTrace) {
  // Alarm verdicts must be bit-comparable; distances agree to solver
  // rounding (warm Jacobi visits rotations in a different order than cold,
  // so the last few bits can differ).
  const Topology topo = spca::testing::small_topology();
  const TraceSet trace = spca::testing::flat_trace(topo, 64, 5);
  const DetectorRunLite exact = run_with(ModelBackendKind::kExact, trace);
  const DetectorRunLite warm = run_with(ModelBackendKind::kWarm, trace);
  ASSERT_EQ(exact.alarms.size(), warm.alarms.size());
  EXPECT_EQ(exact.ready, warm.ready);
  EXPECT_EQ(exact.alarms, warm.alarms);
  for (std::size_t t = 0; t < exact.distances.size(); ++t) {
    EXPECT_NEAR(exact.distances[t], warm.distances[t],
                1e-6 * std::max(1.0, exact.distances[t]))
        << "interval " << t;
  }
}

TEST(BackendEquivalence, TruncatedBackendsAgreeOnFlatTrace) {
  // A flat stationary trace keeps every interval far from the alarm
  // threshold, so even the approximate backends must produce the same
  // verdicts; distances may differ within the subspace approximation.
  const Topology topo = spca::testing::small_topology();
  const TraceSet trace = spca::testing::flat_trace(topo, 64, 6);
  const DetectorRunLite exact = run_with(ModelBackendKind::kExact, trace);
  for (const ModelBackendKind kind :
       {ModelBackendKind::kRsvd, ModelBackendKind::kFd}) {
    const DetectorRunLite approx = run_with(kind, trace);
    ASSERT_EQ(exact.alarms.size(), approx.alarms.size());
    std::size_t diverged = 0;
    std::size_t compared = 0;
    for (std::size_t t = 0; t < exact.alarms.size(); ++t) {
      if (!exact.ready[t] || !approx.ready[t]) continue;
      ++compared;
      if (exact.alarms[t] != approx.alarms[t]) ++diverged;
    }
    EXPECT_GT(compared, 0u);
    // rsvd approximates the same sliding-window covariance, so it tracks
    // exact closely even at this tiny window. fd's exponential window is a
    // structurally different estimator and a 16-interval time constant is
    // its worst case — a loose sanity bound here; the documented tolerance
    // gate is the pinned-scenario ablation (bench/abl_backend_accuracy).
    const std::size_t allowed =
        kind == ModelBackendKind::kRsvd ? compared / 10 : compared / 2;
    EXPECT_LE(diverged, allowed)
        << to_string(kind) << " diverged on " << diverged << "/" << compared;
  }
}

}  // namespace
}  // namespace spca
