// Checkpoint/restore of the sketch detector: a restarted monitor process
// must continue the stream exactly where the original left off.
#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "common/error.hpp"
#include "core/sketch_detector.hpp"

namespace spca {
namespace {

using testing::small_topology;
using testing::small_trace;

SketchDetectorConfig checkpoint_config() {
  SketchDetectorConfig config;
  config.window = 64;
  config.epsilon = 0.05;
  config.sketch_rows = 16;
  config.rank_policy = RankPolicy::fixed(3);
  config.seed = 31337;
  return config;
}

TEST(Checkpoint, RestoredDetectorContinuesBitForBit) {
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 220, 17, /*anomalies=*/3,
                                     /*warmup=*/100);
  SketchDetector original(trace.num_flows(), checkpoint_config());

  // Stream half the trace, checkpoint mid-flight (after the model has been
  // fitted and some lazy refreshes happened).
  for (std::size_t t = 0; t < 120; ++t) {
    (void)original.observe(static_cast<std::int64_t>(t), trace.row(t));
  }
  const std::vector<std::byte> blob = original.save_state();
  SketchDetector restored = SketchDetector::restore_state(blob);

  EXPECT_EQ(restored.observed(), original.observed());
  EXPECT_EQ(restored.model_computations(), original.model_computations());

  // Both must now produce identical verdicts for the rest of the stream.
  for (std::size_t t = 120; t < 220; ++t) {
    const Detection a =
        original.observe(static_cast<std::int64_t>(t), trace.row(t));
    const Detection b =
        restored.observe(static_cast<std::int64_t>(t), trace.row(t));
    ASSERT_EQ(a.ready, b.ready) << "t=" << t;
    ASSERT_EQ(a.alarm, b.alarm) << "t=" << t;
    ASSERT_EQ(a.distance, b.distance) << "t=" << t;  // bit-exact
    ASSERT_EQ(a.threshold, b.threshold) << "t=" << t;
    ASSERT_EQ(a.model_refreshed, b.model_refreshed) << "t=" << t;
  }
}

TEST(Checkpoint, WorksBeforeWarmupCompletes) {
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 100, 18);
  SketchDetector original(trace.num_flows(), checkpoint_config());
  for (std::size_t t = 0; t < 20; ++t) {
    (void)original.observe(static_cast<std::int64_t>(t), trace.row(t));
  }
  SketchDetector restored =
      SketchDetector::restore_state(original.save_state());
  for (std::size_t t = 20; t < 100; ++t) {
    const Detection a =
        original.observe(static_cast<std::int64_t>(t), trace.row(t));
    const Detection b =
        restored.observe(static_cast<std::int64_t>(t), trace.row(t));
    ASSERT_EQ(a.ready, b.ready);
    ASSERT_EQ(a.alarm, b.alarm);
    ASSERT_EQ(a.distance, b.distance);
  }
}

TEST(Checkpoint, ConfigRoundTrips) {
  SketchDetectorConfig config = checkpoint_config();
  config.projection = ProjectionKind::kSparse;
  config.sparsity = 5.0;
  config.lazy = false;
  config.rank_policy = RankPolicy::energy(0.85);
  SketchDetector original(8, config);
  const SketchDetector restored =
      SketchDetector::restore_state(original.save_state());
  EXPECT_EQ(restored.config().projection, ProjectionKind::kSparse);
  EXPECT_EQ(restored.config().sparsity, 5.0);
  EXPECT_FALSE(restored.config().lazy);
  EXPECT_EQ(restored.config().rank_policy.kind, RankPolicy::Kind::kEnergy);
  EXPECT_EQ(restored.config().rank_policy.energy_fraction, 0.85);
}

TEST(Checkpoint, RejectsCorruptedBlobs) {
  SketchDetector detector(4, checkpoint_config());
  std::vector<std::byte> blob = detector.save_state();

  std::vector<std::byte> truncated(blob.begin(), blob.end() - 5);
  EXPECT_THROW((void)SketchDetector::restore_state(truncated),
               ProtocolError);

  std::vector<std::byte> bad_magic = blob;
  bad_magic[0] = std::byte{0xFF};
  EXPECT_THROW((void)SketchDetector::restore_state(bad_magic),
               ProtocolError);

  std::vector<std::byte> trailing = blob;
  trailing.push_back(std::byte{0});
  EXPECT_THROW((void)SketchDetector::restore_state(trailing), ProtocolError);
}

TEST(Checkpoint, ObservabilityCountersSurviveRestore) {
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 150, 21, /*anomalies=*/2,
                                     /*warmup=*/64);
  SketchDetector original(trace.num_flows(), checkpoint_config());
  for (std::size_t t = 0; t < 100; ++t) {
    (void)original.observe(static_cast<std::int64_t>(t), trace.row(t));
  }
  ASSERT_GT(original.observed(), 0u);
  ASSERT_GT(original.model_computations(), 0u);

  SketchDetector restored =
      SketchDetector::restore_state(original.save_state());
  EXPECT_EQ(restored.observed(), original.observed());
  EXPECT_EQ(restored.model_computations(), original.model_computations());
  EXPECT_EQ(restored.memory_bytes(), original.memory_bytes());

  // The counters keep advancing in lockstep after the restart, so restored
  // processes report continuous (not reset) observability totals.
  for (std::size_t t = 100; t < 150; ++t) {
    (void)original.observe(static_cast<std::int64_t>(t), trace.row(t));
    (void)restored.observe(static_cast<std::int64_t>(t), trace.row(t));
    ASSERT_EQ(restored.observed(), original.observed()) << "t=" << t;
    ASSERT_EQ(restored.model_computations(), original.model_computations())
        << "t=" << t;
  }
  EXPECT_EQ(original.observed(), 150u);
}

TEST(Checkpoint, SketchStateIsPreservedExactly) {
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 90, 19);
  SketchDetector original(trace.num_flows(), checkpoint_config());
  for (std::size_t t = 0; t < 90; ++t) {
    (void)original.observe(static_cast<std::int64_t>(t), trace.row(t));
  }
  const SketchDetector restored =
      SketchDetector::restore_state(original.save_state());
  EXPECT_EQ(max_abs_diff(original.sketch_matrix(), restored.sketch_matrix()),
            0.0);
  const Vector mu_a = original.sketch_means();
  const Vector mu_b = restored.sketch_means();
  for (std::size_t j = 0; j < mu_a.size(); ++j) {
    EXPECT_EQ(mu_a[j], mu_b[j]);
  }
}

}  // namespace
}  // namespace spca
