#include "core/lakhina_detector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "../helpers.hpp"
#include "common/contracts.hpp"
#include "linalg/stats.hpp"
#include "stream/sliding_window.hpp"

namespace spca {
namespace {

using testing::small_topology;
using testing::small_trace;

LakhinaConfig small_config(std::size_t window) {
  LakhinaConfig config;
  config.window = window;
  config.alpha = 0.01;
  config.rank_policy = RankPolicy::fixed(3);
  return config;
}

TEST(LakhinaDetector, WarmupProducesNoVerdicts) {
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 40, 1);
  LakhinaDetector detector(trace.num_flows(), small_config(32));
  for (std::size_t t = 0; t < 31; ++t) {
    const Detection det =
        detector.observe(static_cast<std::int64_t>(t), trace.row(t));
    EXPECT_FALSE(det.ready);
  }
  const Detection det = detector.observe(31, trace.row(31));
  EXPECT_TRUE(det.ready);
}

TEST(LakhinaDetector, ModelMatchesBatchPcaOnWindow) {
  // After streaming n rows, the incremental covariance model must equal
  // batch PCA over exactly those rows.
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 48, 2);
  const std::size_t n = 48;
  LakhinaDetector detector(trace.num_flows(), small_config(n));
  for (std::size_t t = 0; t < n; ++t) {
    (void)detector.observe(static_cast<std::int64_t>(t), trace.row(t));
  }
  ASSERT_TRUE(detector.model().has_value());
  const PcaModel batch = PcaModel::from_data(trace.volumes());
  const PcaModel& streaming = *detector.model();
  const double scale = batch.singular_values()[0];
  for (std::size_t j = 0; j < trace.num_flows(); ++j) {
    EXPECT_NEAR(streaming.singular_values()[j], batch.singular_values()[j],
                1e-6 * scale)
        << "component " << j;
  }
  for (std::size_t j = 0; j < trace.num_flows(); ++j) {
    EXPECT_NEAR(streaming.column_means()[j], batch.column_means()[j],
                1e-6 * (1.0 + std::abs(batch.column_means()[j])));
  }
}

TEST(LakhinaDetector, SlidingWindowForgetsOldRows) {
  // Stream 2n rows; the model must match batch PCA over the LAST n only.
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 96, 3);
  const std::size_t n = 48;
  LakhinaDetector detector(trace.num_flows(), small_config(n));
  for (std::size_t t = 0; t < 96; ++t) {
    (void)detector.observe(static_cast<std::int64_t>(t), trace.row(t));
  }
  SlidingWindowMatrix window(n, trace.num_flows());
  for (std::size_t t = 96 - n; t < 96; ++t) {
    window.add_row(trace.row(t));
  }
  const PcaModel batch = PcaModel::from_data(window.to_matrix());
  const double scale = batch.singular_values()[0];
  for (std::size_t j = 0; j < trace.num_flows(); ++j) {
    EXPECT_NEAR(detector.model()->singular_values()[j],
                batch.singular_values()[j], 1e-5 * scale);
  }
}

TEST(LakhinaDetector, QuietTrafficRarelyAlarms) {
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 200, 4);
  LakhinaDetector detector(trace.num_flows(), small_config(96));
  std::size_t alarms = 0, ready = 0;
  for (std::size_t t = 0; t < 200; ++t) {
    const Detection det =
        detector.observe(static_cast<std::int64_t>(t), trace.row(t));
    if (det.ready) {
      ++ready;
      if (det.alarm) ++alarms;
    }
  }
  ASSERT_GT(ready, 0u);
  // alpha = 0.01; allow generous slack for the approximation.
  EXPECT_LT(static_cast<double>(alarms) / static_cast<double>(ready), 0.12);
}

Detection observe_with_spike(double multiplier, Detection* baseline = nullptr) {
  const Topology topo = small_topology();
  TraceSet trace = testing::flat_trace(topo, 160, 5);
  for (const std::size_t f : {1u, 6u, 9u}) {
    trace.volumes()(150, f) *= multiplier;
  }
  LakhinaDetector detector(trace.num_flows(), small_config(128));
  Detection at_spike;
  for (std::size_t t = 0; t < 160; ++t) {
    const Detection det =
        detector.observe(static_cast<std::int64_t>(t), trace.row(t));
    if (t == 150) at_spike = det;
    if (t == 149 && baseline != nullptr) *baseline = det;
  }
  return at_spike;
}

TEST(LakhinaDetector, DetectsVolumeSpike) {
  // A clear anomaly at t = 150 on several flows. Deliberately NOT so large
  // that the spiked row dominates the window's spectrum: the model is fitted
  // with the observation included (paper semantics), so an overwhelming
  // single row would rotate the top principal components onto itself and be
  // absorbed into the normal subspace — the poisoning effect of [3].
  Detection baseline;
  const Detection at_spike = observe_with_spike(1.4, &baseline);
  EXPECT_TRUE(at_spike.ready);
  EXPECT_TRUE(at_spike.alarm);
  EXPECT_GT(at_spike.distance, at_spike.threshold);
  EXPECT_GT(at_spike.distance, 1.5 * baseline.distance);
}

TEST(LakhinaDetector, OverwhelmingSpikeIsAbsorbedByPoisonedSubspace) {
  // Documents the contamination weakness the paper cites ([2], [3]): a
  // spike large enough to dominate the window spectrum becomes a principal
  // component itself and the residual distance COLLAPSES instead of growing.
  const Detection moderate = observe_with_spike(1.4);
  const Detection overwhelming = observe_with_spike(4.0);
  EXPECT_TRUE(moderate.alarm);
  EXPECT_FALSE(overwhelming.alarm);
  EXPECT_LT(overwhelming.distance, moderate.distance);
}

TEST(LakhinaDetector, DistanceProfileIsMonotoneNonIncreasing) {
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 72, 6);
  LakhinaDetector detector(trace.num_flows(), small_config(64));
  for (std::size_t t = 0; t < 72; ++t) {
    (void)detector.observe(static_cast<std::int64_t>(t), trace.row(t));
  }
  const Vector profile = detector.distance_profile();
  ASSERT_EQ(profile.size(), trace.num_flows() - 1);
  for (std::size_t r = 1; r < profile.size(); ++r) {
    EXPECT_LE(profile[r], profile[r - 1] + 1e-9);
  }
}

TEST(LakhinaDetector, DistanceProfileMatchesPerRankDistances) {
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 72, 7);
  LakhinaDetector detector(trace.num_flows(), small_config(64));
  Vector last_row;
  for (std::size_t t = 0; t < 72; ++t) {
    last_row = trace.row(t);
    (void)detector.observe(static_cast<std::int64_t>(t), last_row);
  }
  const Vector profile = detector.distance_profile();
  for (const std::size_t r : {1u, 3u, 7u}) {
    EXPECT_NEAR(profile[r - 1],
                detector.model()->anomaly_distance(last_row, r), 1e-9);
  }
}

TEST(LakhinaDetector, RecomputePeriodSkipsModelRefits) {
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 96, 8);
  LakhinaConfig lazy_config = small_config(48);
  lazy_config.recompute_period = 8;
  LakhinaDetector detector(trace.num_flows(), lazy_config);
  for (std::size_t t = 0; t < 96; ++t) {
    (void)detector.observe(static_cast<std::int64_t>(t), trace.row(t));
  }
  // 49 ready intervals with period 8: far fewer recomputes than intervals.
  EXPECT_LE(detector.model_computations(), 9u);
  EXPECT_GE(detector.model_computations(), 5u);
}

TEST(LakhinaDetector, ConfigValidation) {
  EXPECT_THROW(LakhinaDetector(1, small_config(16)), ContractViolation);
  LakhinaConfig bad = small_config(1);
  EXPECT_THROW(LakhinaDetector(4, bad), ContractViolation);
  bad = small_config(16);
  bad.alpha = 0.0;
  EXPECT_THROW(LakhinaDetector(4, bad), ContractViolation);
  bad = small_config(16);
  bad.recompute_period = 0;
  EXPECT_THROW(LakhinaDetector(4, bad), ContractViolation);
}

TEST(LakhinaDetector, RejectsWrongDimensionInput) {
  LakhinaDetector detector(4, small_config(8));
  EXPECT_THROW((void)detector.observe(0, Vector(3)), ContractViolation);
}

}  // namespace
}  // namespace spca
