#include "core/evaluation.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "common/contracts.hpp"
#include "core/sketch_detector.hpp"

namespace spca {
namespace {

using testing::small_topology;
using testing::small_trace;

TEST(ConfusionMatrix, CountsAllFourCells) {
  ConfusionMatrix cm;
  cm.add(true, true);    // TP
  cm.add(true, false);   // FN
  cm.add(false, true);   // FP
  cm.add(false, false);  // TN
  cm.add(false, false);
  EXPECT_EQ(cm.true_positives, 1u);
  EXPECT_EQ(cm.false_negatives, 1u);
  EXPECT_EQ(cm.false_positives, 1u);
  EXPECT_EQ(cm.true_negatives, 2u);
  EXPECT_EQ(cm.total(), 5u);
}

TEST(ConfusionMatrix, ErrorDefinitionsMatchSec6) {
  ConfusionMatrix cm;
  // 3 true anomalies: 2 caught, 1 missed. 7 normals: 1 false alarm.
  cm.true_positives = 2;
  cm.false_negatives = 1;
  cm.false_positives = 1;
  cm.true_negatives = 6;
  EXPECT_DOUBLE_EQ(cm.type1_error(), 1.0 / 7.0);
  EXPECT_DOUBLE_EQ(cm.type2_error(), 1.0 / 3.0);
}

TEST(ConfusionMatrix, EmptyClassesGiveZeroError) {
  ConfusionMatrix cm;
  EXPECT_EQ(cm.type1_error(), 0.0);
  EXPECT_EQ(cm.type2_error(), 0.0);
}

TEST(RunDetector, CollectsVerdictForEveryInterval) {
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 60, 1);
  SketchDetectorConfig config;
  config.window = 32;
  config.sketch_rows = 8;
  config.rank_policy = RankPolicy::fixed(2);
  SketchDetector detector(trace.num_flows(), config);
  const DetectorRun run = run_detector(detector, trace);
  EXPECT_EQ(run.detections.size(), 60u);
  EXPECT_EQ(run.first_ready, 31u);
  EXPECT_EQ(run.detector_name, "sketch-pca");
  for (std::size_t t = 0; t < 31; ++t) {
    EXPECT_FALSE(run.detections[t].ready);
  }
  for (std::size_t t = 31; t < 60; ++t) {
    EXPECT_TRUE(run.detections[t].ready);
  }
}

DetectorRun synthetic_run(const std::vector<int>& alarms,
                          std::size_t first_ready) {
  DetectorRun run;
  run.detector_name = "synthetic";
  run.first_ready = first_ready;
  for (std::size_t t = 0; t < alarms.size(); ++t) {
    Detection det;
    det.ready = t >= first_ready;
    det.alarm = alarms[t] != 0;
    run.detections.push_back(det);
  }
  return run;
}

TEST(ScoreAgainstLabels, RestrictsToReadyEvaluatedRegion) {
  const DetectorRun run = synthetic_run({0, 0, 1, 0, 1, 0}, 2);
  const std::vector<bool> truth = {true, false, true, false, false, true};
  const ConfusionMatrix cm = score_against_labels(run, truth, 0);
  // Evaluated region: t = 2..5 -> (truth, alarm): (1,1) (0,0) (0,1) (1,0)
  EXPECT_EQ(cm.true_positives, 1u);
  EXPECT_EQ(cm.true_negatives, 1u);
  EXPECT_EQ(cm.false_positives, 1u);
  EXPECT_EQ(cm.false_negatives, 1u);
}

TEST(ScoreAgainstLabels, FirstEvalFurtherRestricts) {
  const DetectorRun run = synthetic_run({1, 1, 1, 1}, 0);
  const std::vector<bool> truth = {false, false, false, false};
  const ConfusionMatrix cm = score_against_labels(run, truth, 3);
  EXPECT_EQ(cm.total(), 1u);
  EXPECT_EQ(cm.false_positives, 1u);
}

TEST(ScoreAgainstLabels, SizeMismatchRejected) {
  const DetectorRun run = synthetic_run({0, 1}, 0);
  EXPECT_THROW((void)score_against_labels(run, {true}, 0),
               ContractViolation);
}

TEST(ScoreAgainstReference, TreatsReferenceAlarmsAsTruth) {
  // The paper's protocol: reference = exact method's alarms.
  const DetectorRun reference = synthetic_run({0, 1, 1, 0, 0}, 1);
  const DetectorRun run = synthetic_run({0, 1, 0, 0, 1}, 1);
  const ConfusionMatrix cm = score_against_reference(run, reference);
  // Evaluated t = 1..4: ref (1,1,0,0), run (1,0,0,1).
  EXPECT_EQ(cm.true_positives, 1u);
  EXPECT_EQ(cm.false_negatives, 1u);
  EXPECT_EQ(cm.true_negatives, 1u);
  EXPECT_EQ(cm.false_positives, 1u);
  EXPECT_DOUBLE_EQ(cm.type1_error(), 0.5);
  EXPECT_DOUBLE_EQ(cm.type2_error(), 0.5);
}

TEST(ScoreAgainstReference, UsesLaterFirstReady) {
  const DetectorRun reference = synthetic_run({1, 1, 1}, 0);
  const DetectorRun run = synthetic_run({1, 1, 1}, 2);
  const ConfusionMatrix cm = score_against_reference(run, reference);
  EXPECT_EQ(cm.total(), 1u);
}

TEST(ScoreAgainstReference, PerfectAgreementGivesZeroErrors) {
  const DetectorRun a = synthetic_run({0, 1, 0, 1, 0}, 0);
  const ConfusionMatrix cm = score_against_reference(a, a);
  EXPECT_EQ(cm.type1_error(), 0.0);
  EXPECT_EQ(cm.type2_error(), 0.0);
}

}  // namespace
}  // namespace spca
