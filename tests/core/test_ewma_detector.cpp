#include "core/ewma_detector.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "common/contracts.hpp"
#include "core/evaluation.hpp"
#include "linalg/stats.hpp"
#include "synth/anomaly_injector.hpp"

namespace spca {
namespace {

using testing::flat_trace;
using testing::small_topology;

TEST(EwmaDetector, WarmupThenReady) {
  EwmaConfig config;
  config.warmup = 10;
  EwmaDetector detector(3, config);
  for (std::int64_t t = 0; t < 10; ++t) {
    EXPECT_FALSE(detector.observe(t, Vector{1.0, 2.0, 3.0}).ready);
  }
  EXPECT_TRUE(detector.observe(10, Vector{1.0, 2.0, 3.0}).ready);
}

TEST(EwmaDetector, QuietTrafficRarelyAlarms) {
  const Topology topo = small_topology();
  const TraceSet trace = flat_trace(topo, 400, 3);
  EwmaConfig config;
  config.warmup = 100;
  EwmaDetector detector(trace.num_flows(), config);
  const DetectorRun run = run_detector(detector, trace);
  std::size_t alarms = 0, ready = 0;
  for (const auto& det : run.detections) {
    if (det.ready) {
      ++ready;
      if (det.alarm) ++alarms;
    }
  }
  ASSERT_GT(ready, 0u);
  EXPECT_LT(static_cast<double>(alarms) / static_cast<double>(ready), 0.05);
}

TEST(EwmaDetector, CatchesSingleFlowSpikeAndNamesIt) {
  const Topology topo = small_topology();
  TraceSet trace = flat_trace(topo, 300, 4);
  trace.volumes()(250, 7) *= 3.0;
  EwmaConfig config;
  config.warmup = 100;
  EwmaDetector detector(trace.num_flows(), config);
  Detection at_spike;
  std::size_t worst_at_spike = 0;
  for (std::size_t t = 0; t < 300; ++t) {
    const Detection det =
        detector.observe(static_cast<std::int64_t>(t), trace.row(t));
    if (t == 250) {
      at_spike = det;
      worst_at_spike = detector.worst_flow();
    }
  }
  EXPECT_TRUE(at_spike.alarm);
  EXPECT_EQ(worst_at_spike, 7u);
}

TEST(EwmaDetector, BlindToCoordinatedLowProfileAnomalies) {
  // The motivating contrast with PCA: a coordinated 2.5-sigma bump across
  // many flows stays under a per-flow 4-sigma control limit.
  const Topology topo = small_topology();
  TraceSet trace = flat_trace(topo, 400, 5);
  std::vector<FlowId> flows;
  for (FlowId f = 1; f < 13; ++f) flows.push_back(f);
  AnomalyInjector injector(topo, 6);
  injector.inject_botnet(trace, 350, 3, flows, 2.0);

  EwmaConfig config;
  config.warmup = 100;
  config.k_sigma = 4.0;
  EwmaDetector detector(trace.num_flows(), config);
  const DetectorRun run = run_detector(detector, trace);
  for (std::int64_t t = 350; t <= 352; ++t) {
    EXPECT_FALSE(run.detections[static_cast<std::size_t>(t)].alarm)
        << "t=" << t;
  }
}

TEST(EwmaDetector, TracksSlowDriftWithoutAlarming) {
  EwmaConfig config;
  config.warmup = 50;
  EwmaDetector detector(1, config);
  bool any_alarm = false;
  double level = 1000.0;
  for (std::int64_t t = 0; t < 600; ++t) {
    level *= 1.001;  // 0.1% growth per interval
    // Small jitter so variance stays positive.
    const double x = level * (1.0 + 0.01 * ((t % 5) - 2) / 2.0);
    any_alarm = any_alarm || detector.observe(t, Vector{x}).alarm;
  }
  EXPECT_FALSE(any_alarm);
}

TEST(EwmaDetector, ConfigValidation) {
  EXPECT_THROW(EwmaDetector(0, EwmaConfig{}), ContractViolation);
  EwmaConfig bad;
  bad.smoothing = 0.0;
  EXPECT_THROW(EwmaDetector(2, bad), ContractViolation);
  bad = EwmaConfig{};
  bad.k_sigma = 0.0;
  EXPECT_THROW(EwmaDetector(2, bad), ContractViolation);
  bad = EwmaConfig{};
  bad.warmup = 1;
  EXPECT_THROW(EwmaDetector(2, bad), ContractViolation);
}

}  // namespace
}  // namespace spca
