// Broad property sweep over the sketch detector's configuration space:
// every combination must stream without numerical breakdown, produce
// finite nonnegative statistics, respect warm-up semantics, and stay
// deterministic.
#include <gtest/gtest.h>

#include <cmath>

#include "../helpers.hpp"
#include "core/evaluation.hpp"
#include "core/sketch_detector.hpp"

namespace spca {
namespace {

using testing::small_topology;
using testing::small_trace;

struct SweepCase {
  std::size_t window;
  std::size_t sketch_rows;
  ProjectionKind projection;
  bool lazy;
  RankPolicy::Kind rank_kind;
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  const auto& c = info.param;
  std::string name = "w" + std::to_string(c.window) + "_l" +
                     std::to_string(c.sketch_rows) + "_";
  switch (c.projection) {
    case ProjectionKind::kGaussian:
      name += "gauss";
      break;
    case ProjectionKind::kTugOfWar:
      name += "tow";
      break;
    case ProjectionKind::kSparse:
      name += "sparse";
      break;
    case ProjectionKind::kVerySparse:
      name += "vsparse";
      break;
  }
  name += c.lazy ? "_lazy" : "_eager";
  name += c.rank_kind == RankPolicy::Kind::kFixed    ? "_fixed"
          : c.rank_kind == RankPolicy::Kind::kEnergy ? "_energy"
                                                     : "_scree";
  return name;
}

class SketchDetectorSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SketchDetectorSweep, InvariantsHoldThroughoutStream) {
  const SweepCase& c = GetParam();
  const Topology topo = small_topology();
  const TraceSet trace =
      small_trace(topo, c.window + 60, 1234, /*anomalies=*/2,
                  /*warmup=*/static_cast<std::int64_t>(c.window));

  SketchDetectorConfig config;
  config.window = c.window;
  config.sketch_rows = c.sketch_rows;
  config.projection = c.projection;
  config.lazy = c.lazy;
  config.rank_policy.kind = c.rank_kind;
  config.rank_policy.fixed_rank = 3;
  config.seed = 99;
  SketchDetector detector(trace.num_flows(), config);

  for (std::size_t t = 0; t < trace.num_intervals(); ++t) {
    const Detection det =
        detector.observe(static_cast<std::int64_t>(t), trace.row(t));
    // Warm-up semantics: ready exactly from interval window-1 onward.
    EXPECT_EQ(det.ready, t + 1 >= c.window) << "t=" << t;
    if (!det.ready) continue;
    EXPECT_TRUE(std::isfinite(det.distance)) << "t=" << t;
    EXPECT_GE(det.distance, 0.0);
    EXPECT_TRUE(std::isfinite(det.threshold));
    EXPECT_GE(det.threshold, 0.0);
    EXPECT_GE(det.normal_rank, 1u);
    EXPECT_LT(det.normal_rank, trace.num_flows());
    EXPECT_EQ(det.alarm,
              det.distance * det.distance >
                  det.threshold * det.threshold);
  }
  EXPECT_GE(detector.model_computations(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSpace, SketchDetectorSweep,
    ::testing::Values(
        SweepCase{48, 4, ProjectionKind::kGaussian, true,
                  RankPolicy::Kind::kFixed},
        SweepCase{48, 4, ProjectionKind::kTugOfWar, false,
                  RankPolicy::Kind::kFixed},
        SweepCase{48, 32, ProjectionKind::kSparse, true,
                  RankPolicy::Kind::kEnergy},
        SweepCase{48, 32, ProjectionKind::kVerySparse, false,
                  RankPolicy::Kind::kScree},
        SweepCase{96, 16, ProjectionKind::kGaussian, true,
                  RankPolicy::Kind::kEnergy},
        SweepCase{96, 64, ProjectionKind::kTugOfWar, true,
                  RankPolicy::Kind::kScree},
        SweepCase{96, 128, ProjectionKind::kSparse, false,
                  RankPolicy::Kind::kFixed},
        SweepCase{192, 48, ProjectionKind::kVerySparse, true,
                  RankPolicy::Kind::kFixed}),
    case_name);

}  // namespace
}  // namespace spca
