#include "core/markov_detector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "../helpers.hpp"
#include "common/contracts.hpp"
#include "core/evaluation.hpp"
#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"

namespace spca {
namespace {

using testing::flat_trace;
using testing::small_topology;

MarkovConfig test_config() {
  MarkovConfig config;
  config.window = 256;
  config.warmup = 64;
  return config;
}

TEST(MarkovDetector, WarmupThenReady) {
  MarkovDetector detector(2, test_config());
  for (std::int64_t t = 0; t < 64; ++t) {
    EXPECT_FALSE(detector.observe(t, Vector{100.0, 50.0}).ready);
  }
  EXPECT_TRUE(detector.observe(64, Vector{100.0, 50.0}).ready);
}

TEST(MarkovDetector, TransitionProbabilitiesFormDistribution) {
  MarkovConfig config = test_config();
  MarkovDetector detector(1, config);
  Xoshiro256 gen(1);
  for (std::int64_t t = 0; t < 300; ++t) {
    detector.observe(t, Vector{1000.0 + 100.0 * standard_normal(gen)});
  }
  for (std::size_t from = 0; from < config.num_states; ++from) {
    double total = 0.0;
    for (std::size_t to = 0; to < config.num_states; ++to) {
      const double p = detector.transition_probability(from, to);
      EXPECT_GT(p, 0.0);
      EXPECT_LE(p, 1.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << "from=" << from;
  }
}

TEST(MarkovDetector, ConstantTrafficSelfTransitionDominates) {
  MarkovDetector detector(1, test_config());
  for (std::int64_t t = 0; t < 400; ++t) {
    detector.observe(t, Vector{5000.0});
  }
  const std::size_t state = detector.last_state();
  EXPECT_GT(detector.transition_probability(state, state), 0.5);
}

TEST(MarkovDetector, PeriodicAlternationLearnedAsStructure) {
  // The z-normalized quantizer maps a deterministic alternation onto two
  // states; the chain must learn the A->B / B->A structure, making the
  // cross transitions likely and the self transitions unlikely.
  MarkovDetector detector(1, test_config());
  for (std::int64_t t = 0; t < 400; ++t) {
    detector.observe(t, Vector{5000.0 + 50.0 * static_cast<double>(t % 2)});
  }
  const std::size_t b = detector.last_state();
  // Find the partner state as the most likely successor of b.
  std::size_t a = b;
  double best = 0.0;
  for (std::size_t to = 0; to < test_config().num_states; ++to) {
    const double p = detector.transition_probability(b, to);
    if (p > best) {
      best = p;
      a = to;
    }
  }
  EXPECT_NE(a, b);
  EXPECT_GT(detector.transition_probability(b, a), 0.5);
  EXPECT_GT(detector.transition_probability(a, b), 0.5);
  EXPECT_LT(detector.transition_probability(b, b), 0.3);
}

TEST(MarkovDetector, QuietTrafficRarelyAlarms) {
  const Topology topo = small_topology();
  const TraceSet trace = flat_trace(topo, 500, 8);
  MarkovDetector detector(trace.num_flows(), test_config());
  const DetectorRun run = run_detector(detector, trace);
  std::size_t alarms = 0, ready = 0;
  for (const auto& det : run.detections) {
    if (det.ready) {
      ++ready;
      if (det.alarm) ++alarms;
    }
  }
  ASSERT_GT(ready, 0u);
  // Empirical-quantile threshold: the false-alarm rate is ~alpha by
  // construction; allow generous slack.
  EXPECT_LT(static_cast<double>(alarms) / static_cast<double>(ready), 0.06);
}

TEST(MarkovDetector, VolumeRegimeChangeRaisesSurprise) {
  const Topology topo = small_topology();
  TraceSet trace = flat_trace(topo, 400, 9);
  // Network-wide surge at t = 350: every flow doubles.
  for (std::size_t j = 0; j < trace.num_flows(); ++j) {
    trace.volumes()(350, j) *= 2.0;
  }
  MarkovDetector detector(trace.num_flows(), test_config());
  Detection at_surge;
  double mean_quiet = 0.0;
  std::size_t quiet = 0;
  for (std::size_t t = 0; t < 400; ++t) {
    const Detection det =
        detector.observe(static_cast<std::int64_t>(t), trace.row(t));
    if (t == 350) {
      at_surge = det;
    } else if (det.ready && t < 350) {
      mean_quiet += det.distance;
      ++quiet;
    }
  }
  ASSERT_GT(quiet, 0u);
  mean_quiet /= static_cast<double>(quiet);
  EXPECT_TRUE(at_surge.alarm);
  EXPECT_GT(at_surge.distance, 2.0 * mean_quiet);
}

TEST(MarkovDetector, SlidingWindowForgetsOldRegimes) {
  MarkovConfig config = test_config();
  config.window = 64;
  MarkovDetector detector(1, config);
  // Long run in regime A, then a long run in regime B; after the window
  // has fully turned over, regime B's self-transition dominates again.
  std::int64_t t = 0;
  for (; t < 200; ++t) detector.observe(t, Vector{1000.0});
  for (; t < 500; ++t) detector.observe(t, Vector{1000.0});
  const std::size_t state = detector.last_state();
  EXPECT_GT(detector.transition_probability(state, state), 0.8);
}

TEST(MarkovDetector, ConfigValidation) {
  EXPECT_THROW(MarkovDetector(0, test_config()), ContractViolation);
  MarkovConfig bad = test_config();
  bad.num_states = 1;
  EXPECT_THROW(MarkovDetector(2, bad), ContractViolation);
  bad = test_config();
  bad.alpha = 0.0;
  EXPECT_THROW(MarkovDetector(2, bad), ContractViolation);
  bad = test_config();
  bad.window = 2;
  EXPECT_THROW(MarkovDetector(2, bad), ContractViolation);
}

}  // namespace
}  // namespace spca
