#include "core/differenced_detector.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "../helpers.hpp"
#include "common/contracts.hpp"
#include "core/evaluation.hpp"
#include "core/sketch_detector.hpp"

namespace spca {
namespace {

using testing::small_topology;
using testing::small_trace;

/// Records everything it is fed, for white-box wrapper checks.
class RecordingDetector final : public Detector {
 public:
  Detection observe(std::int64_t t, const Vector& x) override {
    times.push_back(t);
    inputs.push_back(x);
    Detection det;
    det.ready = true;
    return det;
  }
  [[nodiscard]] std::string name() const override { return "recorder"; }

  std::vector<std::int64_t> times;
  std::vector<Vector> inputs;
};

TEST(DifferencedDetector, FeedsFirstDifferencesToInner) {
  auto recorder = std::make_unique<RecordingDetector>();
  RecordingDetector* raw = recorder.get();
  DifferencedDetector wrapper(std::move(recorder));

  (void)wrapper.observe(0, Vector{10.0, 100.0});
  (void)wrapper.observe(1, Vector{13.0, 90.0});
  (void)wrapper.observe(2, Vector{13.0, 95.0});

  ASSERT_EQ(raw->inputs.size(), 2u);  // priming interval consumed
  EXPECT_EQ(raw->times[0], 1);
  EXPECT_DOUBLE_EQ(raw->inputs[0][0], 3.0);
  EXPECT_DOUBLE_EQ(raw->inputs[0][1], -10.0);
  EXPECT_DOUBLE_EQ(raw->inputs[1][0], 0.0);
  EXPECT_DOUBLE_EQ(raw->inputs[1][1], 5.0);
}

TEST(DifferencedDetector, PrimingIntervalNotReady) {
  DifferencedDetector wrapper(std::make_unique<RecordingDetector>());
  EXPECT_FALSE(wrapper.observe(0, Vector{1.0}).ready);
  EXPECT_TRUE(wrapper.observe(1, Vector{2.0}).ready);
}

TEST(DifferencedDetector, NameAppendsDiff) {
  DifferencedDetector wrapper(std::make_unique<RecordingDetector>());
  EXPECT_EQ(wrapper.name(), "recorder+diff");
}

TEST(DifferencedDetector, NullInnerRejected) {
  EXPECT_THROW(DifferencedDetector(nullptr), ContractViolation);
}

TEST(DifferencedDetector, DetectsStepOnsetUnderDiurnalTraffic) {
  // The wrapper's purpose: with a strong diurnal cycle, differencing makes
  // the stream stationary; a coordinated step change shows up as a spike
  // in the differenced stream at onset.
  const Topology topo = small_topology();
  TraceSet trace = small_trace(topo, 260, 12);  // diurnal trace
  for (std::size_t j = 1; j <= 6; ++j) {
    for (std::size_t t = 240; t < 244; ++t) {
      trace.volumes()(t, j) *= 1.6;
    }
  }
  SketchDetectorConfig config;
  config.window = 128;
  config.sketch_rows = 64;
  config.rank_policy = RankPolicy::fixed(3);
  config.seed = 5;
  DifferencedDetector wrapper(
      std::make_unique<SketchDetector>(trace.num_flows(), config));
  const DetectorRun run = run_detector(wrapper, trace);
  EXPECT_TRUE(run.detections[240].alarm);  // onset spike in differences
}

TEST(DifferencedDetector, QuietDiurnalTrafficRarelyAlarms) {
  const Topology topo = small_topology();
  const TraceSet trace = small_trace(topo, 300, 13);
  SketchDetectorConfig config;
  config.window = 128;
  config.sketch_rows = 64;
  config.rank_policy = RankPolicy::fixed(3);
  config.seed = 6;
  DifferencedDetector wrapper(
      std::make_unique<SketchDetector>(trace.num_flows(), config));
  const DetectorRun run = run_detector(wrapper, trace);
  std::size_t alarms = 0, ready = 0;
  for (const auto& det : run.detections) {
    if (det.ready) {
      ++ready;
      if (det.alarm) ++alarms;
    }
  }
  ASSERT_GT(ready, 0u);
  EXPECT_LT(static_cast<double>(alarms) / static_cast<double>(ready), 0.15);
}

}  // namespace
}  // namespace spca
