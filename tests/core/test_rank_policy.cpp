#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "core/detector.hpp"
#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"

namespace spca {
namespace {

PcaModel fitted_model(std::size_t m, std::uint64_t seed, Matrix* data_out) {
  Xoshiro256 gen(seed);
  Matrix x(200, m);
  for (std::size_t i = 0; i < 200; ++i) {
    const double shared = 10.0 * standard_normal(gen);
    for (std::size_t j = 0; j < m; ++j) {
      x(i, j) = 50.0 + shared + standard_normal(gen);
    }
  }
  if (data_out != nullptr) *data_out = x;
  return PcaModel::from_data(x);
}

TEST(RankPolicy, FixedReturnsConfiguredRank) {
  const PcaModel model = fitted_model(6, 1, nullptr);
  EXPECT_EQ(RankPolicy::fixed(3).select(model, Matrix{}), 3u);
}

TEST(RankPolicy, FixedClampedToValidRange) {
  const PcaModel model = fitted_model(6, 2, nullptr);
  EXPECT_EQ(RankPolicy::fixed(0).select(model, Matrix{}), 1u);
  EXPECT_EQ(RankPolicy::fixed(99).select(model, Matrix{}), 5u);
}

TEST(RankPolicy, EnergyFindsDominantComponent) {
  // The shared factor dominates: 90% energy needs very few components.
  const PcaModel model = fitted_model(8, 3, nullptr);
  const std::size_t r = RankPolicy::energy(0.9).select(model, Matrix{});
  EXPECT_LE(r, 3u);
  EXPECT_GE(r, 1u);
}

TEST(RankPolicy, KSigmaRequiresFittedData) {
  const PcaModel model = fitted_model(4, 4, nullptr);
  EXPECT_THROW((void)RankPolicy::ksigma_policy(3.0).select(model, Matrix{}),
               ContractViolation);
}

TEST(RankPolicy, ScreeFindsTheSharedFactor) {
  // One dominant shared factor: the scree elbow is at r = 1.
  const PcaModel model = fitted_model(6, 6, nullptr);
  EXPECT_EQ(RankPolicy::scree(0.1).select(model, Matrix{}), 1u);
}

TEST(RankPolicy, KSigmaUsesProvidedData) {
  Matrix data;
  const PcaModel model = fitted_model(5, 5, &data);
  const std::size_t r = RankPolicy::ksigma_policy(8.0).select(model, data);
  EXPECT_GE(r, 1u);
  EXPECT_LE(r, 4u);  // clamped to m-1 even when no outlier found
}

}  // namespace
}  // namespace spca
