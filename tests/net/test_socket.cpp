#include "net/socket.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace spca {
namespace {

using namespace std::chrono_literals;

constexpr const char* kLoopback = "127.0.0.1";

TEST(Socket, ListenerBindsEphemeralPort) {
  TcpListener listener(kLoopback, 0);
  EXPECT_GT(listener.port(), 0);
  TcpListener other(kLoopback, 0);
  EXPECT_NE(listener.port(), other.port());
}

TEST(Socket, ConnectSendReceiveRoundTrip) {
  TcpListener listener(kLoopback, 0);
  TcpStream client = TcpStream::connect(kLoopback, listener.port(), 2000ms);
  TcpStream server = listener.accept(2000ms);
  ASSERT_TRUE(client.valid());
  ASSERT_TRUE(server.valid());

  const std::string text = "sketch-pca over the wire";
  client.send_all(reinterpret_cast<const std::byte*>(text.data()),
                  text.size(), 2000ms);

  std::vector<std::byte> received;
  while (received.size() < text.size()) {
    std::byte chunk[8];
    const std::ptrdiff_t n = server.recv_some(chunk, sizeof(chunk), 2000ms);
    ASSERT_GT(n, 0);
    received.insert(received.end(), chunk, chunk + n);
  }
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(received.data()),
                        received.size()),
            text);
}

TEST(Socket, AcceptTimesOutWithInvalidStream) {
  TcpListener listener(kLoopback, 0);
  const TcpStream stream = listener.accept(20ms);
  EXPECT_FALSE(stream.valid());
}

TEST(Socket, RecvTimesOutWithMinusOne) {
  TcpListener listener(kLoopback, 0);
  TcpStream client = TcpStream::connect(kLoopback, listener.port(), 2000ms);
  TcpStream server = listener.accept(2000ms);
  std::byte buf[4];
  EXPECT_EQ(server.recv_some(buf, sizeof(buf), 20ms), -1);
  (void)client;
}

TEST(Socket, ShutdownSendSurfacesAsEof) {
  TcpListener listener(kLoopback, 0);
  TcpStream client = TcpStream::connect(kLoopback, listener.port(), 2000ms);
  TcpStream server = listener.accept(2000ms);
  client.shutdown_send();
  std::byte buf[4];
  EXPECT_EQ(server.recv_some(buf, sizeof(buf), 2000ms), 0);
}

TEST(Socket, ConnectRefusedThrowsTransportError) {
  // Bind-then-close guarantees the port is currently unused.
  std::uint16_t dead_port = 0;
  {
    TcpListener listener(kLoopback, 0);
    dead_port = listener.port();
  }
  EXPECT_THROW((void)TcpStream::connect(kLoopback, dead_port, 500ms),
               TransportError);
}

TEST(Socket, RetryExhaustionCountsAttempts) {
  std::uint16_t dead_port = 0;
  {
    TcpListener listener(kLoopback, 0);
    dead_port = listener.port();
  }
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.connect_timeout = 200ms;
  policy.backoff_initial = 1ms;
  policy.backoff_max = 2ms;
  std::size_t failures = 0;
  std::chrono::milliseconds last_delay{0};
  EXPECT_THROW(
      (void)connect_with_retry(kLoopback, dead_port, policy,
                               [&](std::size_t attempt,
                                   std::chrono::milliseconds delay) {
                                 failures = attempt;
                                 last_delay = delay;
                               }),
      TransportError);
  // One sink call per failed attempt.
  EXPECT_EQ(failures, 3u);
  EXPECT_GT(last_delay.count(), 0);
}

TEST(Socket, RetrySucceedsOnceListenerAppears) {
  // Reserve a port, drop the listener, dial with retries, and bring the
  // listener back mid-backoff: the dialer must land on a later attempt.
  TcpListener reserve(kLoopback, 0);
  const std::uint16_t port = reserve.port();
  reserve.close();

  RetryPolicy policy;
  policy.max_attempts = 200;
  policy.connect_timeout = 200ms;
  policy.backoff_initial = 5ms;
  policy.backoff_max = 20ms;

  std::thread rescuer([&] {
    std::this_thread::sleep_for(50ms);
    TcpListener listener(kLoopback, port);
    TcpStream server = listener.accept(5000ms);
    EXPECT_TRUE(server.valid());
  });

  std::size_t failed_attempts = 0;
  TcpStream client = connect_with_retry(
      kLoopback, port, policy,
      [&](std::size_t, std::chrono::milliseconds) { ++failed_attempts; });
  EXPECT_TRUE(client.valid());
  EXPECT_GE(failed_attempts, 1u);
  rescuer.join();
}

}  // namespace
}  // namespace spca
