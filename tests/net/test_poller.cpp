// Poller readiness multiplexer (net/poller.hpp): both backends must report
// level-triggered read readiness with O(ready) output, and the epoll event
// loop behind TcpTransport must sustain the ISSUE's 200-connection scale-out
// on one endpoint.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "dist/message.hpp"
#include "net/poller.hpp"
#include "net/tcp_transport.hpp"

namespace spca {
namespace {

using namespace std::chrono_literals;

/// A self-closing pipe pair for readiness probing.
struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(pipe(fds), 0); }
  ~Pipe() {
    if (fds[0] >= 0) close(fds[0]);
    if (fds[1] >= 0) close(fds[1]);
  }
  void write_byte() const {
    const char b = 'x';
    ASSERT_EQ(write(fds[1], &b, 1), 1);
  }
};

class PollerBackends : public ::testing::TestWithParam<PollerBackend> {};

TEST_P(PollerBackends, ReportsOnlyReadyDescriptors) {
  Poller poller(GetParam());
  Pipe a, b, c;
  poller.add(a.fds[0]);
  poller.add(b.fds[0]);
  poller.add(c.fds[0]);
  EXPECT_EQ(poller.watched(), 3u);

  std::vector<PollerEvent> ready;
  EXPECT_EQ(poller.wait(ready, 0ms), 0u);
  EXPECT_TRUE(ready.empty());

  a.write_byte();
  c.write_byte();
  ASSERT_EQ(poller.wait(ready, 1000ms), 2u);
  std::vector<int> fds;
  for (const PollerEvent& e : ready) {
    EXPECT_TRUE(e.readable);
    fds.push_back(e.fd);
  }
  EXPECT_NE(std::find(fds.begin(), fds.end(), a.fds[0]), fds.end());
  EXPECT_NE(std::find(fds.begin(), fds.end(), c.fds[0]), fds.end());

  // Level-triggered: the unread byte keeps the descriptor ready.
  EXPECT_EQ(poller.wait(ready, 0ms), 2u);

  // Removed descriptors stop reporting (remove of unwatched is a no-op).
  poller.remove(a.fds[0]);
  poller.remove(a.fds[0]);
  EXPECT_EQ(poller.watched(), 2u);
  ASSERT_EQ(poller.wait(ready, 0ms), 1u);
  EXPECT_EQ(ready[0].fd, c.fds[0]);
}

TEST_P(PollerBackends, ReportsPeerCloseAsReadable) {
  Poller poller(GetParam());
  Pipe p;
  poller.add(p.fds[0]);
  close(p.fds[1]);
  p.fds[1] = -1;

  std::vector<PollerEvent> ready;
  ASSERT_EQ(poller.wait(ready, 1000ms), 1u);
  // EOF shows up as readable (a zero-byte read) and/or hangup; either way
  // the owner is woken to read it to completion and drop the connection.
  EXPECT_TRUE(ready[0].readable || ready[0].error);
}

INSTANTIATE_TEST_SUITE_P(BothBackends, PollerBackends,
                         ::testing::Values(PollerBackend::kEpoll,
                                           PollerBackend::kPoll),
                         [](const auto& info) {
                           return info.param == PollerBackend::kEpoll
                                      ? "epoll"
                                      : "poll";
                         });

TEST(Poller, AutoResolvesToEpollOnLinux) {
#ifdef __linux__
  Poller poller(PollerBackend::kAuto);
  EXPECT_STREQ(poller.backend_name(), "epoll");
#else
  GTEST_SKIP() << "epoll is Linux-only";
#endif
}

TEST(TcpTransportScale, SustainsTwoHundredConnectionsOnOneEndpoint) {
  // The ISSUE's scale-out bar: one listening endpoint, 200 dialing peers,
  // one event-loop thread. Every peer sends one message; the server must
  // see all 200 connections live and deliver every payload.
  constexpr std::size_t kPeers = 200;

  TcpTransportConfig server_config;
  server_config.node_id = kNocId;
  server_config.listen_host = "127.0.0.1";
  server_config.listen_port = 0;
  server_config.io_timeout = 30000ms;
  TcpTransport server(server_config);
  server.start();
  EXPECT_STREQ(server.poller_backend(), "epoll");

  std::vector<std::unique_ptr<TcpTransport>> peers;
  peers.reserve(kPeers);
  for (std::size_t i = 0; i < kPeers; ++i) {
    TcpTransportConfig pc;
    pc.node_id = static_cast<NodeId>(i + 1);
    pc.peers.push_back({kNocId, "127.0.0.1", server.listen_port()});
    pc.retry.max_attempts = 400;
    pc.retry.backoff_initial = 2ms;
    pc.retry.backoff_max = 20ms;
    pc.io_timeout = 30000ms;
    peers.push_back(std::make_unique<TcpTransport>(pc));
    peers.back()->start();

    Message msg;
    msg.type = MessageType::kVolumeReport;
    msg.from = pc.node_id;
    msg.to = kNocId;
    msg.interval = 1;
    msg.ids = {static_cast<std::uint32_t>(i)};
    msg.values = {static_cast<double>(i)};
    peers.back()->send(msg);
  }

  // All 200 handshakes complete and stay multiplexed on the one loop.
  std::vector<bool> seen(kPeers, false);
  std::size_t delivered = 0;
  const auto deadline = std::chrono::steady_clock::now() + 60s;
  while (delivered < kPeers && std::chrono::steady_clock::now() < deadline) {
    (void)server.wait_for_mail(kNocId, 200ms);
    for (const Message& msg : server.drain(kNocId)) {
      ASSERT_GE(msg.from, 1u);
      ASSERT_LE(msg.from, kPeers);
      EXPECT_FALSE(seen[msg.from - 1]) << "duplicate from " << msg.from;
      seen[msg.from - 1] = true;
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, kPeers);
  EXPECT_GE(server.watched_connections(), kPeers);
  EXPECT_EQ(server.connected_peers().size(), kPeers);

  // Round trip: the server answers each peer over its accepted connection.
  for (std::size_t i = 0; i < kPeers; ++i) {
    Message reply;
    reply.type = MessageType::kSketchRequest;
    reply.from = kNocId;
    reply.to = static_cast<NodeId>(i + 1);
    reply.interval = 1;
    server.send(reply);
  }
  for (std::size_t i = 0; i < kPeers; ++i) {
    ASSERT_TRUE(peers[i]->wait_for_mail(static_cast<NodeId>(i + 1), 30000ms))
        << "peer " << (i + 1);
    const std::vector<Message> mail =
        peers[i]->drain(static_cast<NodeId>(i + 1));
    ASSERT_EQ(mail.size(), 1u);
    EXPECT_EQ(mail[0].type, MessageType::kSketchRequest);
  }
}

}  // namespace
}  // namespace spca
