// Loopback end-to-end of the daemon pair: a NocDaemon and its MonitorDaemons
// running as real TcpTransport endpoints on 127.0.0.1 must reproduce the
// SimNetwork reference trajectory bit for bit, survive a monitor kill and
// restart mid-run, and tolerate monitors dialing before the NOC listens.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "ingest/record_file.hpp"
#include "net/monitor_daemon.hpp"
#include "net/noc_daemon.hpp"
#include "net/scenario.hpp"
#include "net/socket.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/span_log.hpp"

namespace spca {
namespace {

using namespace std::chrono_literals;

NetScenarioConfig small_scenario() {
  NetScenarioConfig config;
  config.topology = "diamond";
  config.intervals = 40;
  config.window = 12;
  config.sketch_rows = 8;
  config.monitors = 2;
  config.seed = 7;
  config.anomalies = 3;
  return config;
}

RetryPolicy fast_retry() {
  RetryPolicy retry;
  retry.max_attempts = 400;
  retry.connect_timeout = 1000ms;
  retry.backoff_initial = 5ms;
  retry.backoff_max = 50ms;
  return retry;
}

MonitorDaemonConfig monitor_config(const NetScenarioConfig& scenario,
                                   NodeId id, std::uint16_t port) {
  MonitorDaemonConfig config;
  config.scenario = scenario;
  config.monitor_id = id;
  config.noc_host = "127.0.0.1";
  config.noc_port = port;
  config.retry = fast_retry();
  config.io_timeout = 20000ms;
  return config;
}

/// Runs one monitor daemon on the calling thread, capturing any exception.
void run_monitor(MonitorDaemonConfig config, MonitorDaemonResult& result,
                 std::exception_ptr& error) {
  try {
    MonitorDaemon daemon(std::move(config));
    result = daemon.run();
  } catch (...) {
    error = std::current_exception();
  }
}

void expect_matches_reference(const ScenarioRun& run,
                              const ScenarioRun& reference) {
  EXPECT_EQ(run.alarm_intervals, reference.alarm_intervals);
  ASSERT_EQ(run.distances.size(), reference.distances.size());
  for (std::size_t i = 0; i < reference.distances.size(); ++i) {
    EXPECT_EQ(run.distances[i], reference.distances[i])
        << "interval index " << i;
  }
}

TEST(Daemons, LoopbackDeploymentMatchesSimReferenceBitForBit) {
  const NetScenarioConfig config = small_scenario();
  const NetScenario scenario = build_scenario(config);
  const ScenarioRun reference = run_scenario_reference(scenario);

  NocDaemonConfig noc_config;
  noc_config.scenario = config;
  noc_config.listen_port = 0;
  noc_config.interval_deadline = 30000ms;
  NocDaemon noc(noc_config);
  noc.start();

  std::vector<std::thread> threads;
  std::vector<MonitorDaemonResult> results(config.monitors);
  std::vector<std::exception_ptr> errors(config.monitors);
  for (std::size_t k = 0; k < config.monitors; ++k) {
    threads.emplace_back(run_monitor,
                         monitor_config(config,
                                        static_cast<NodeId>(k + 1),
                                        noc.bound_port()),
                         std::ref(results[k]), std::ref(errors[k]));
  }

  const ScenarioRun run = noc.run();
  for (auto& t : threads) t.join();
  for (auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  expect_matches_reference(run, reference);
  EXPECT_EQ(noc.reconnects(), 0u);

  // The deployment-wide wire accounting (NOC sends + every monitor's sends)
  // equals the single-transport reference byte for byte.
  NetworkStats total = run.stats;
  for (const auto& result : results) {
    EXPECT_EQ(result.intervals_reported,
              static_cast<std::int64_t>(config.intervals));
    total += result.stats;
  }
  EXPECT_TRUE(total == reference.stats);
}

TEST(Daemons, MonitorKillAndRestartSurvivesViaReconnect) {
  const NetScenarioConfig config = small_scenario();
  const NetScenario scenario = build_scenario(config);
  const ScenarioRun reference = run_scenario_reference(scenario);

  // Kill point: past warm-up, so the restarted daemon has real sketch state
  // to rebuild before rejoining.
  const auto kill_at = static_cast<std::int64_t>(config.window + 6);

  NocDaemonConfig noc_config;
  noc_config.scenario = config;
  noc_config.listen_port = 0;
  noc_config.interval_deadline = 30000ms;
  NocDaemon noc(noc_config);
  noc.start();

  // Monitor 2 runs the whole scenario; monitor 1 exits after kill_at and a
  // fresh daemon process-equivalent restarts from that interval, absorbing
  // the earlier trace locally.
  MonitorDaemonResult steady_result, first_result, reborn_result;
  std::exception_ptr steady_error, restart_error;
  std::thread steady(run_monitor, monitor_config(config, 2, noc.bound_port()),
                     std::ref(steady_result), std::ref(steady_error));
  std::thread restarting([&] {
    try {
      MonitorDaemonConfig first = monitor_config(config, 1, noc.bound_port());
      first.last_interval = kill_at;
      MonitorDaemon killed(first);
      first_result = killed.run();

      MonitorDaemonConfig second = monitor_config(config, 1, noc.bound_port());
      second.first_interval = kill_at;
      MonitorDaemon reborn(second);
      reborn_result = reborn.run();
    } catch (...) {
      restart_error = std::current_exception();
    }
  });

  const ScenarioRun run = noc.run();
  steady.join();
  restarting.join();
  if (steady_error) std::rethrow_exception(steady_error);
  if (restart_error) std::rethrow_exception(restart_error);

  // The trajectory is unchanged by the kill/restart...
  expect_matches_reference(run, reference);
  // ...the NOC observed monitor 1 coming back...
  EXPECT_GE(noc.reconnects(), 1u);
  // ...and the two monitor-1 incarnations covered the scenario between them.
  EXPECT_EQ(first_result.intervals_reported, kill_at);
  EXPECT_EQ(reborn_result.intervals_reported,
            static_cast<std::int64_t>(config.intervals) - kill_at);
  EXPECT_EQ(steady_result.intervals_reported,
            static_cast<std::int64_t>(config.intervals));
}

TEST(Daemons, RecordIngestReproducesTheSyntheticTrajectory) {
  // Monitors streaming their volumes from a record file exported off the
  // scenario trace (--ingest-records) must follow the exact trajectory of
  // monitors replaying the synthetic trace directly.
  const NetScenarioConfig config = small_scenario();
  const NetScenario scenario = build_scenario(config);
  const ScenarioRun reference = run_scenario_reference(scenario);

  const std::string records =
      (std::filesystem::temp_directory_path() / "spca_daemon_ingest.spcr")
          .string();
  RecordExportOptions options;
  options.records_per_cell = 2;
  export_records(scenario.trace, records, options);

  NocDaemonConfig noc_config;
  noc_config.scenario = config;
  noc_config.listen_port = 0;
  noc_config.interval_deadline = 30000ms;
  NocDaemon noc(noc_config);
  noc.start();

  std::vector<std::thread> threads;
  std::vector<MonitorDaemonResult> results(config.monitors);
  std::vector<std::exception_ptr> errors(config.monitors);
  for (std::size_t k = 0; k < config.monitors; ++k) {
    MonitorDaemonConfig monitor =
        monitor_config(config, static_cast<NodeId>(k + 1), noc.bound_port());
    monitor.ingest_records = records;
    threads.emplace_back(run_monitor, std::move(monitor),
                         std::ref(results[k]), std::ref(errors[k]));
  }

  const ScenarioRun run = noc.run();
  for (auto& t : threads) t.join();
  std::filesystem::remove(records);
  for (auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  expect_matches_reference(run, reference);
}

/// One status-endpoint HTTP GET, reading until the server's HTTP/1.0 close.
std::string http_get(int port, const std::string& path) {
  TcpStream stream = TcpStream::connect(
      "127.0.0.1", static_cast<std::uint16_t>(port), 5000ms);
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  stream.send_all(reinterpret_cast<const std::byte*>(request.data()),
                  request.size(), 5000ms);
  std::string response;
  std::byte buf[4096];
  for (;;) {
    const std::ptrdiff_t n = stream.recv_some(buf, sizeof(buf), 10000ms);
    if (n <= 0) break;
    response.append(reinterpret_cast<const char*>(buf),
                    static_cast<std::size_t>(n));
  }
  return response;
}

TEST(Daemons, TelemetryPlaneIsBitInvariantAndScrapableLive) {
  // The full telemetry plane — interval spans, the flight recorder, and a
  // live status endpoint scraped mid-run — must not perturb the detection
  // trajectory by a single bit, and the sim and TCP deployments must
  // produce structurally identical span trees.
  const NetScenarioConfig config = small_scenario();
  const NetScenario scenario = build_scenario(config);

  const std::string flight_dir =
      (std::filesystem::temp_directory_path() / "spca_daemon_flight")
          .string();
  FlightRecorder::global().configure(flight_dir, 256);

  SpanLog::global().clear();
  const ScenarioRun reference = run_scenario_reference(scenario);
  const std::vector<std::string> sim_signature =
      structural_signature(SpanLog::global().snapshot());
  EXPECT_FALSE(sim_signature.empty());

  SpanLog::global().clear();
  NocDaemonConfig noc_config;
  noc_config.scenario = config;
  noc_config.listen_port = 0;
  noc_config.interval_deadline = 30000ms;
  noc_config.status_port = 0;
  std::promise<int> port_promise;
  noc_config.on_status_port = [&port_promise](int port) {
    port_promise.set_value(port);
  };
  NocDaemon noc(noc_config);
  noc.start();

  // Scrape every route while the deployment is live; the daemon serves
  // from its wait slices, so the scrape rides on the protocol's idle time.
  std::string metrics_json, healthz, prometheus;
  std::thread scraper([&] {
    std::future<int> port = port_promise.get_future();
    if (port.wait_for(30s) != std::future_status::ready) return;
    const int p = port.get();
    metrics_json = http_get(p, "/metrics.json");
    healthz = http_get(p, "/healthz");
    prometheus = http_get(p, "/metrics");
  });

  std::vector<std::thread> threads;
  std::vector<MonitorDaemonResult> results(config.monitors);
  std::vector<std::exception_ptr> errors(config.monitors);
  for (std::size_t k = 0; k < config.monitors; ++k) {
    threads.emplace_back(run_monitor,
                         monitor_config(config,
                                        static_cast<NodeId>(k + 1),
                                        noc.bound_port()),
                         std::ref(results[k]), std::ref(errors[k]));
  }

  const ScenarioRun run = noc.run();
  for (auto& t : threads) t.join();
  scraper.join();
  for (auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  // Bit-invariance: all telemetry on, trajectory unchanged.
  expect_matches_reference(run, reference);

  // The live scrapes answered with real content.
  EXPECT_NE(metrics_json.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics_json.find("\"counters\""), std::string::npos);
  EXPECT_NE(healthz.find("\"role\":\"noc\""), std::string::npos);
  EXPECT_NE(prometheus.find("# TYPE"), std::string::npos);

  // Sim and TCP runs traced the same stages on the same nodes for the same
  // intervals.
  const std::vector<std::string> tcp_signature =
      structural_signature(SpanLog::global().snapshot());
  EXPECT_EQ(sim_signature, tcp_signature);

  // The flight recorder captured per-interval snapshots and can dump them.
  EXPECT_GT(FlightRecorder::global().recorded(), 0u);
  const std::string dump = FlightRecorder::global().dump("test");
  EXPECT_NE(dump, "");
  FlightRecorder::global().reset();
  std::error_code ec;
  std::filesystem::remove_all(flight_dir, ec);
}

TEST(Daemons, MonitorsStartedBeforeTheNocBackOffAndConnect) {
  NetScenarioConfig config = small_scenario();
  config.intervals = 24;  // keep the run short; this tests startup ordering
  config.anomalies = 1;
  const NetScenario scenario = build_scenario(config);
  const ScenarioRun reference = run_scenario_reference(scenario);

  // Reserve an ephemeral port, then free it so the monitors dial a port
  // nobody listens on yet.
  std::uint16_t port = 0;
  {
    TcpListener reserve("127.0.0.1", 0);
    port = reserve.port();
  }

  std::vector<std::thread> threads;
  std::vector<MonitorDaemonResult> results(config.monitors);
  std::vector<std::exception_ptr> errors(config.monitors);
  for (std::size_t k = 0; k < config.monitors; ++k) {
    threads.emplace_back(run_monitor,
                         monitor_config(config,
                                        static_cast<NodeId>(k + 1), port),
                         std::ref(results[k]), std::ref(errors[k]));
  }

  // Let the monitors burn a few connect attempts before the NOC exists.
  std::this_thread::sleep_for(100ms);

  NocDaemonConfig noc_config;
  noc_config.scenario = config;
  noc_config.listen_host = "127.0.0.1";
  noc_config.listen_port = port;
  noc_config.interval_deadline = 30000ms;
  NocDaemon noc(noc_config);
  noc.start();
  const ScenarioRun run = noc.run();

  for (auto& t : threads) t.join();
  for (auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  expect_matches_reference(run, reference);
}

}  // namespace
}  // namespace spca
