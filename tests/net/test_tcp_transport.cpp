#include "net/tcp_transport.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "net/frame.hpp"

namespace spca {
namespace {

using namespace std::chrono_literals;

constexpr const char* kLoopback = "127.0.0.1";

Message volume_report(NodeId from, std::int64_t interval) {
  Message msg;
  msg.type = MessageType::kVolumeReport;
  msg.from = from;
  msg.to = kNocId;
  msg.interval = interval;
  msg.ids = {1, 2};
  msg.values = {10.0, 20.0};
  return msg;
}

TcpTransportConfig noc_config() {
  TcpTransportConfig config;
  config.node_id = kNocId;
  config.listen_host = kLoopback;
  config.listen_port = 0;  // ephemeral
  config.io_timeout = 5000ms;
  return config;
}

TcpTransportConfig monitor_config(NodeId id, std::uint16_t noc_port) {
  TcpTransportConfig config;
  config.node_id = id;
  config.peers.push_back({kNocId, kLoopback, noc_port});
  config.retry.max_attempts = 100;
  config.retry.backoff_initial = 5ms;
  config.retry.backoff_max = 50ms;
  config.io_timeout = 5000ms;
  return config;
}

TEST(TcpTransport, SendAndDrainBothDirections) {
  TcpTransport noc(noc_config());
  noc.start();
  TcpTransport monitor(monitor_config(1, noc.listen_port()));
  monitor.start();

  // Monitor -> NOC.
  const Message report = volume_report(1, 3);
  monitor.send(report);
  ASSERT_TRUE(noc.wait_for_mail(kNocId, 5000ms));
  const auto at_noc = noc.drain(kNocId);
  ASSERT_EQ(at_noc.size(), 1u);
  EXPECT_EQ(at_noc[0].type, MessageType::kVolumeReport);
  EXPECT_EQ(at_noc[0].from, 1);
  EXPECT_EQ(at_noc[0].interval, 3);
  EXPECT_EQ(at_noc[0].values, report.values);

  // NOC -> monitor over the same (inbound) connection.
  Message request;
  request.type = MessageType::kSketchRequest;
  request.from = kNocId;
  request.to = 1;
  request.interval = 3;
  noc.send(request);
  ASSERT_TRUE(monitor.wait_for_mail(1, 5000ms));
  const auto at_monitor = monitor.drain(1);
  ASSERT_EQ(at_monitor.size(), 1u);
  EXPECT_EQ(at_monitor[0].type, MessageType::kSketchRequest);

  // Send-side accounting lives on the sender only.
  EXPECT_EQ(monitor.stats().messages, 1u);
  EXPECT_EQ(noc.stats().messages, 1u);
  monitor.stop();
  noc.stop();
}

TEST(TcpTransport, TakeConsumesOnlyMatchingMessages) {
  TcpTransport noc(noc_config());
  noc.start();
  TcpTransport monitor(monitor_config(1, noc.listen_port()));
  monitor.start();

  monitor.send(volume_report(1, 1));
  Message alarm;
  alarm.type = MessageType::kAlarm;
  alarm.from = 1;
  alarm.to = kNocId;
  alarm.interval = 1;
  monitor.send(alarm);
  monitor.send(volume_report(1, 2));

  // TCP preserves order on one connection: once the last message is
  // visible, all three are queued.
  std::vector<Message> alarms;
  std::vector<Message> reports;
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (reports.size() < 2 && std::chrono::steady_clock::now() < deadline) {
    (void)noc.wait_for_mail(kNocId, 100ms);
    for (auto& m : noc.take(kNocId, MessageType::kVolumeReport)) {
      reports.push_back(std::move(m));
    }
    for (auto& m : noc.take(kNocId, MessageType::kAlarm)) {
      alarms.push_back(std::move(m));
    }
  }
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].interval, 1);
  EXPECT_EQ(reports[1].interval, 2);
  ASSERT_EQ(alarms.size(), 1u);
  EXPECT_EQ(alarms[0].type, MessageType::kAlarm);
  EXPECT_FALSE(noc.has_mail(kNocId));
  monitor.stop();
  noc.stop();
}

TEST(TcpTransport, SelfDeliveryBypassesTheWireButNotTheCodec) {
  TcpTransport noc(noc_config());
  noc.start();
  Message note = volume_report(kNocId, 9);
  note.to = kNocId;
  noc.send(note);
  ASSERT_TRUE(noc.has_mail(kNocId));
  const auto mail = noc.drain(kNocId);
  ASSERT_EQ(mail.size(), 1u);
  EXPECT_EQ(mail[0].interval, 9);
  EXPECT_EQ(noc.stats().messages, 1u);  // self-sends are still accounted
  noc.stop();
}

TEST(TcpTransport, ControlFramesCarryAdvance) {
  TcpTransport noc(noc_config());
  noc.start();
  TcpTransport monitor(monitor_config(1, noc.listen_port()));
  monitor.start();

  // The NOC needs the inbound connection before it can address monitor 1;
  // a first report establishes it.
  monitor.send(volume_report(1, 0));
  ASSERT_TRUE(noc.wait_for_mail(kNocId, 5000ms));
  (void)noc.drain(kNocId);

  noc.send_control(1, FrameType::kAdvance, encode_interval_payload(7));
  ASSERT_TRUE(monitor.wait_for_activity(5000ms));
  const auto control = monitor.poll_control();
  ASSERT_TRUE(control.has_value());
  EXPECT_EQ(control->from, kNocId);
  EXPECT_EQ(control->type, FrameType::kAdvance);
  EXPECT_EQ(decode_interval_payload(control->payload), 7);
  // Control traffic never enters the message statistics.
  EXPECT_EQ(noc.stats().messages, 0u);
  EXPECT_EQ(noc.stats().bytes, 0u);
  monitor.stop();
  noc.stop();
}

TEST(TcpTransport, ReconnectAfterPeerRestartIsCountedAndWorks) {
  TcpTransport noc(noc_config());
  noc.start();
  const std::uint16_t port = noc.listen_port();

  {
    TcpTransport monitor(monitor_config(1, port));
    monitor.start();
    monitor.send(volume_report(1, 0));
    ASSERT_TRUE(noc.wait_for_mail(kNocId, 5000ms));
    EXPECT_EQ(noc.drain(kNocId).size(), 1u);
    monitor.stop();  // graceful shutdown: the NOC sees EOF and drops 1
  }

  // Wait until the NOC noticed the drop before restarting.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (noc.connected(1) && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_FALSE(noc.connected(1));
  EXPECT_EQ(noc.reconnects(), 0u);

  // The restarted monitor re-dials; its registration is a reconnect.
  TcpTransport reborn(monitor_config(1, port));
  reborn.start();
  reborn.send(volume_report(1, 1));
  ASSERT_TRUE(noc.wait_for_mail(kNocId, 5000ms));
  const auto mail = noc.drain(kNocId);
  ASSERT_EQ(mail.size(), 1u);
  EXPECT_EQ(mail[0].interval, 1);
  EXPECT_EQ(noc.reconnects(), 1u);
  EXPECT_TRUE(noc.connected(1));
  reborn.stop();
  noc.stop();
}

TEST(TcpTransport, DialerBacksOffUntilListenerAppears) {
  // Reserve a port, close it, and start the dialer before the listener
  // exists — it must keep retrying instead of failing fast.
  std::uint16_t port = 0;
  {
    TcpListener reserve(kLoopback, 0);
    port = reserve.port();
  }

  TcpTransportConfig late = noc_config();
  late.listen_port = port;

  std::thread dialer_thread([&] {
    TcpTransport monitor(monitor_config(1, port));
    monitor.start();  // blocks in connect_with_retry until the NOC is up
    monitor.send(volume_report(1, 5));
    monitor.stop();
  });

  std::this_thread::sleep_for(100ms);
  TcpTransport noc(late);
  noc.start();
  EXPECT_TRUE(noc.wait_for_mail(kNocId, 5000ms));
  const auto mail = noc.drain(kNocId);
  ASSERT_EQ(mail.size(), 1u);
  EXPECT_EQ(mail[0].interval, 5);
  dialer_thread.join();
  noc.stop();
}

TEST(TcpTransport, ConnectedPeersReflectsLiveConnections) {
  TcpTransport noc(noc_config());
  noc.start();
  EXPECT_TRUE(noc.connected_peers().empty());
  TcpTransport monitor(monitor_config(3, noc.listen_port()));
  monitor.start();
  monitor.send(volume_report(3, 0));
  ASSERT_TRUE(noc.wait_for_mail(kNocId, 5000ms));
  const auto peers = noc.connected_peers();
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_EQ(peers[0], 3);
  EXPECT_TRUE(monitor.connected(kNocId));
  monitor.stop();
  noc.stop();
}

}  // namespace
}  // namespace spca
