// Satellite (d): the detection trajectory and the byte-level accounting of a
// deployment must be invariant under the transport — in-process queues
// (SimNetwork) versus real loopback TCP sockets (TcpBus) — bit for bit.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dist/sim_network.hpp"
#include "net/scenario.hpp"
#include "net/tcp_bus.hpp"

namespace spca {
namespace {

NetScenarioConfig small_scenario() {
  NetScenarioConfig config;
  config.topology = "diamond";
  config.intervals = 48;
  config.window = 16;
  config.sketch_rows = 8;
  config.monitors = 2;
  config.seed = 7;
  config.anomalies = 3;
  return config;
}

TcpBus bus_for(const NetScenarioConfig& config) {
  std::vector<NodeId> nodes{kNocId};
  for (const NodeId id : scenario_monitor_ids(config.monitors)) {
    nodes.push_back(id);
  }
  return TcpBus(nodes);
}

TEST(TransportParity, TrajectoriesAreBitIdentical) {
  const NetScenario scenario = build_scenario(small_scenario());

  const ScenarioRun sim = run_scenario_reference(scenario, nullptr);
  TcpBus bus = bus_for(scenario.config);
  const ScenarioRun tcp = run_scenario_reference(scenario, &bus);

  ASSERT_FALSE(sim.distances.empty());
  EXPECT_EQ(tcp.alarm_intervals, sim.alarm_intervals);
  // Exact equality, not approximate: the bytes crossing the loopback stack
  // must decode to the same doubles the simulation handed over directly.
  ASSERT_EQ(tcp.distances.size(), sim.distances.size());
  for (std::size_t i = 0; i < sim.distances.size(); ++i) {
    EXPECT_EQ(tcp.distances[i], sim.distances[i]) << "interval index " << i;
  }
}

TEST(TransportParity, NetworkStatsMatchByteForByte) {
  const NetScenario scenario = build_scenario(small_scenario());

  const ScenarioRun sim = run_scenario_reference(scenario, nullptr);
  TcpBus bus = bus_for(scenario.config);
  const ScenarioRun tcp = run_scenario_reference(scenario, &bus);

  EXPECT_GT(sim.stats.messages, 0u);
  EXPECT_TRUE(tcp.stats == sim.stats);
  for (std::size_t i = 1; i <= 4; ++i) {
    EXPECT_EQ(tcp.stats.messages_by_type[i], sim.stats.messages_by_type[i]);
    EXPECT_EQ(tcp.stats.bytes_by_type[i], sim.stats.bytes_by_type[i]);
  }
}

TEST(TransportParity, HoldsAcrossSeedsAndMonitorCounts) {
  for (const std::uint64_t seed : {11ull, 23ull}) {
    for (const std::size_t monitors : {1u, 4u}) {
      NetScenarioConfig config = small_scenario();
      config.seed = seed;
      config.monitors = monitors;
      config.anomalies = 2;
      const NetScenario scenario = build_scenario(config);

      const ScenarioRun sim = run_scenario_reference(scenario, nullptr);
      TcpBus bus = bus_for(config);
      const ScenarioRun tcp = run_scenario_reference(scenario, &bus);

      EXPECT_EQ(tcp.alarm_intervals, sim.alarm_intervals)
          << "seed " << seed << ", monitors " << monitors;
      EXPECT_TRUE(tcp.stats == sim.stats)
          << "seed " << seed << ", monitors " << monitors;
    }
  }
}

TEST(TransportParity, ExplicitSimNetworkMatchesDefaultTransport) {
  // run_scenario_reference(nullptr) constructs its own SimNetwork; passing
  // one explicitly must be indistinguishable.
  const NetScenario scenario = build_scenario(small_scenario());
  const ScenarioRun implicit = run_scenario_reference(scenario, nullptr);
  SimNetwork network;
  const ScenarioRun explicit_run = run_scenario_reference(scenario, &network);
  EXPECT_EQ(explicit_run.alarm_intervals, implicit.alarm_intervals);
  EXPECT_EQ(explicit_run.distances, implicit.distances);
  EXPECT_TRUE(explicit_run.stats == implicit.stats);
}

}  // namespace
}  // namespace spca
