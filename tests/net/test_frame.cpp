#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/crc32.hpp"
#include "common/error.hpp"

namespace spca {
namespace {

std::vector<std::byte> bytes_of(std::initializer_list<int> values) {
  std::vector<std::byte> out;
  out.reserve(values.size());
  for (const int v : values) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(Frame, EncodeDecodeRoundTrip) {
  const auto payload = bytes_of({1, 2, 3, 4, 5});
  const auto wire = encode_frame(FrameType::kMessage, payload);
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + payload.size());

  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  ASSERT_TRUE(decoder.has_frame());
  const Frame frame = decoder.pop();
  EXPECT_EQ(frame.type, FrameType::kMessage);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_FALSE(decoder.has_frame());
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

TEST(Frame, HeaderLayoutIsStable) {
  const auto wire = encode_frame(FrameType::kHello, bytes_of({0xaa, 0xbb}));
  std::uint32_t magic = 0;
  std::memcpy(&magic, wire.data(), sizeof(magic));
  EXPECT_EQ(magic, kFrameMagic);
  EXPECT_EQ(wire[4], std::byte{kWireVersion});
  EXPECT_EQ(wire[5], static_cast<std::byte>(FrameType::kHello));
  std::uint32_t length = 0;
  std::memcpy(&length, wire.data() + 6, sizeof(length));
  EXPECT_EQ(length, 2u);
  // The CRC covers the first ten header bytes plus the payload.
  std::uint32_t crc_field = 0;
  std::memcpy(&crc_field, wire.data() + kFrameCrcCoverBytes, sizeof(crc_field));
  std::uint32_t expected =
      crc32_update(kCrc32Init, wire.data(), kFrameCrcCoverBytes);
  expected = crc32_finish(
      crc32_update(expected, wire.data() + kFrameHeaderBytes, 2));
  EXPECT_EQ(crc_field, expected);
}

TEST(Frame, Crc32KnownVector) {
  // The IEEE CRC-32 check value: crc32("123456789") == 0xCBF43926.
  const char digits[] = "123456789";
  EXPECT_EQ(crc32(digits, 9), 0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0x00000000u);
}

TEST(Frame, ByteByBytePartialFeedsReassemble) {
  const auto payload = bytes_of({9, 8, 7, 6, 5, 4, 3, 2, 1, 0});
  const auto wire = encode_frame(FrameType::kMessage, payload);

  FrameDecoder decoder;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    EXPECT_FALSE(decoder.has_frame());
    decoder.feed(&wire[i], 1);
  }
  ASSERT_TRUE(decoder.has_frame());
  EXPECT_EQ(decoder.pop().payload, payload);
}

TEST(Frame, MultipleFramesInOneFeed) {
  auto wire = encode_frame(FrameType::kMessage, bytes_of({1}));
  const auto second = encode_frame(FrameType::kAdvance,
                                   encode_interval_payload(42));
  const auto third = encode_frame(FrameType::kMessage, {});
  wire.insert(wire.end(), second.begin(), second.end());
  wire.insert(wire.end(), third.begin(), third.end());

  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  ASSERT_TRUE(decoder.has_frame());
  EXPECT_EQ(decoder.pop().type, FrameType::kMessage);
  ASSERT_TRUE(decoder.has_frame());
  const Frame advance = decoder.pop();
  EXPECT_EQ(advance.type, FrameType::kAdvance);
  EXPECT_EQ(decode_interval_payload(advance.payload), 42);
  ASSERT_TRUE(decoder.has_frame());
  EXPECT_TRUE(decoder.pop().payload.empty());
  EXPECT_FALSE(decoder.has_frame());
}

TEST(Frame, TruncatedHeaderStaysPending) {
  const auto wire = encode_frame(FrameType::kMessage, bytes_of({1, 2, 3}));
  FrameDecoder decoder;
  decoder.feed(wire.data(), kFrameHeaderBytes - 1);
  EXPECT_FALSE(decoder.has_frame());
  EXPECT_EQ(decoder.pending_bytes(), kFrameHeaderBytes - 1);
}

TEST(Frame, BadMagicRejected) {
  auto wire = encode_frame(FrameType::kMessage, bytes_of({1}));
  wire[0] = std::byte{0x00};
  FrameDecoder decoder;
  EXPECT_THROW(decoder.feed(wire.data(), wire.size()), ProtocolError);
}

TEST(Frame, WrongVersionRejected) {
  auto wire = encode_frame(FrameType::kMessage, bytes_of({1}));
  wire[4] = std::byte{kWireVersion + 1};
  FrameDecoder decoder;
  EXPECT_THROW(decoder.feed(wire.data(), wire.size()), ProtocolError);
}

TEST(Frame, UnknownFrameTypeRejected) {
  auto wire = encode_frame(FrameType::kMessage, bytes_of({1}));
  wire[5] = std::byte{0x7f};
  FrameDecoder decoder;
  EXPECT_THROW(decoder.feed(wire.data(), wire.size()), ProtocolError);
}

// A hostile length field must be rejected from the header alone, before any
// allocation sized from it.
TEST(Frame, OversizedLengthFieldRejected) {
  auto wire = encode_frame(FrameType::kMessage, bytes_of({1}));
  const std::uint32_t huge =
      static_cast<std::uint32_t>(kMaxFramePayloadBytes) + 1;
  std::memcpy(wire.data() + 6, &huge, sizeof(huge));
  FrameDecoder decoder;
  EXPECT_THROW(decoder.feed(wire.data(), kFrameHeaderBytes), ProtocolError);
}

// Every single-byte flip in the payload must fail the CRC check — this is
// what lets FaultyTransport's corrupt fault be masked deterministically by
// retransmission.
TEST(Frame, AnyPayloadByteFlipRejectedByCrc) {
  const auto payload = bytes_of({10, 20, 30, 40});
  const auto wire = encode_frame(FrameType::kMessage, payload);
  for (std::size_t i = kFrameHeaderBytes; i < wire.size(); ++i) {
    auto corrupt = wire;
    corrupt[i] ^= std::byte{0x01};
    FrameDecoder decoder;
    EXPECT_THROW(decoder.feed(corrupt.data(), corrupt.size()), ProtocolError)
        << "payload byte " << i;
  }
}

TEST(Frame, CorruptCrcFieldRejected) {
  auto wire = encode_frame(FrameType::kMessage, bytes_of({1, 2, 3}));
  wire[kFrameCrcCoverBytes] ^= std::byte{0x80};
  FrameDecoder decoder;
  EXPECT_THROW(decoder.feed(wire.data(), wire.size()), ProtocolError);
}

// A length field corrupted within bounds truncates the payload the decoder
// sees; the CRC (which covers the length bytes) still catches it.
TEST(Frame, InBoundsLengthCorruptionCaughtByCrc) {
  auto wire = encode_frame(FrameType::kMessage, bytes_of({1, 2, 3, 4, 5}));
  const std::uint32_t shorter = 4;
  std::memcpy(wire.data() + 6, &shorter, sizeof(shorter));
  FrameDecoder decoder;
  EXPECT_THROW(decoder.feed(wire.data(), wire.size()), ProtocolError);
}

TEST(Frame, ZeroLengthPayloadSupported) {
  const auto wire = encode_frame(FrameType::kAdvance, {});
  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  ASSERT_TRUE(decoder.has_frame());
  EXPECT_TRUE(decoder.pop().payload.empty());
}

// Garbage glued behind a valid frame must not corrupt that frame; the
// decoder rejects the trailing bytes once it sees their (bad) header.
TEST(Frame, TrailingGarbageDetectedAfterValidFrame) {
  auto wire = encode_frame(FrameType::kMessage, bytes_of({1, 2}));
  const auto garbage = bytes_of({0xde, 0xad, 0xbe, 0xef, 0x00, 0x00, 0x00,
                                 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00});
  wire.insert(wire.end(), garbage.begin(), garbage.end());
  FrameDecoder decoder;
  EXPECT_THROW(decoder.feed(wire.data(), wire.size()), ProtocolError);
  // The complete frame before the garbage still parsed.
  ASSERT_TRUE(decoder.has_frame());
  EXPECT_EQ(decoder.pop().payload, bytes_of({1, 2}));
}

TEST(Frame, IntervalPayloadRoundTrip) {
  for (const std::int64_t t : {std::numeric_limits<std::int64_t>::min(),
                               std::int64_t{-1}, std::int64_t{0},
                               std::int64_t{12345},
                               std::numeric_limits<std::int64_t>::max()}) {
    EXPECT_EQ(decode_interval_payload(encode_interval_payload(t)), t);
  }
}

TEST(Frame, IntervalPayloadWrongSizeRejected) {
  EXPECT_THROW((void)decode_interval_payload(bytes_of({1, 2, 3})),
               ProtocolError);
  EXPECT_THROW((void)decode_interval_payload({}), ProtocolError);
}

}  // namespace
}  // namespace spca
