// Microbenchmarks of the streaming summaries: the per-element costs that
// Theorem 1 claims are O(l) amortized at a local monitor.
#include <benchmark/benchmark.h>

#include "obs/bench_main.hpp"
#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"
#include "stream/exponential_histogram.hpp"
#include "stream/variance_histogram.hpp"

namespace {

using namespace spca;

void BM_VarianceHistogramAdd(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const double epsilon = static_cast<double>(state.range(1)) / 100.0;
  VarianceHistogram vh(n, epsilon);
  Xoshiro256 gen(1);
  std::int64_t t = 0;
  for (auto _ : state) {
    vh.add(t++, 1e8 + 1e7 * standard_normal(gen));
  }
  state.counters["buckets"] = static_cast<double>(vh.bucket_count());
}
BENCHMARK(BM_VarianceHistogramAdd)
    ->Args({4032, 1})
    ->Args({4032, 10})
    ->Args({20160, 10})
    ->Args({65536, 20});

void BM_VarianceHistogramAggregate(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  VarianceHistogram vh(n, 0.1, /*payload_size=*/32);
  Xoshiro256 gen(2);
  std::vector<double> payload(32);
  for (std::int64_t t = 0; t < static_cast<std::int64_t>(n); ++t) {
    for (auto& p : payload) p = standard_normal(gen);
    vh.add(t, 1e8 + 1e7 * standard_normal(gen), payload);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(vh.aggregate());
  }
}
BENCHMARK(BM_VarianceHistogramAggregate)->Arg(4032)->Arg(20160);

void BM_ExponentialHistogramAdd(benchmark::State& state) {
  ExponentialHistogram eh(static_cast<std::uint64_t>(state.range(0)), 0.1);
  std::int64_t t = 0;
  for (auto _ : state) {
    eh.add(t++);
  }
  state.counters["buckets"] = static_cast<double>(eh.bucket_count());
}
BENCHMARK(BM_ExponentialHistogramAdd)->Arg(4096)->Arg(65536);

}  // namespace

SPCA_BENCHMARK_MAIN_WITH_OBSERVABILITY();
