// Microbenchmarks of the streaming summaries: the per-element costs that
// Theorem 1 claims are O(l) amortized at a local monitor — plus the ingest
// front end (trace readers, the SPSC ring, and the batched sketch path)
// whose per-record costs bound the replay driver's sustainable rate.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "ingest/record_file.hpp"
#include "ingest/spsc_ring.hpp"
#include "obs/bench_main.hpp"
#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"
#include "sketch/flow_sketch.hpp"
#include "stream/exponential_histogram.hpp"
#include "stream/frequent_directions.hpp"
#include "stream/variance_histogram.hpp"
#include "traffic/trace.hpp"

namespace {

using namespace spca;

void BM_VarianceHistogramAdd(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const double epsilon = static_cast<double>(state.range(1)) / 100.0;
  VarianceHistogram vh(n, epsilon);
  Xoshiro256 gen(1);
  std::int64_t t = 0;
  for (auto _ : state) {
    vh.add(t++, 1e8 + 1e7 * standard_normal(gen));
  }
  state.counters["buckets"] = static_cast<double>(vh.bucket_count());
}
BENCHMARK(BM_VarianceHistogramAdd)
    ->Args({4032, 1})
    ->Args({4032, 10})
    ->Args({20160, 10})
    ->Args({65536, 20});

void BM_FrequentDirectionsAppend(benchmark::State& state) {
  // Amortized per-row cost of the fd backend's sketch at its default size
  // (l = 48), including the periodic O(l^2 m) shrink cycles.
  const auto m = static_cast<std::size_t>(state.range(0));
  FrequentDirections fd(48, m);
  Xoshiro256 gen(3);
  constexpr std::size_t kRows = 256;
  std::vector<double> rows(kRows * m);
  for (double& v : rows) v = standard_normal(gen);
  std::size_t i = 0;
  for (auto _ : state) {
    fd.append(std::span<const double>(rows.data() + (i % kRows) * m, m));
    ++i;
  }
  state.counters["shrinks"] = static_cast<double>(fd.shrinks());
}
BENCHMARK(BM_FrequentDirectionsAppend)->Arg(81)->Arg(121);

void BM_VarianceHistogramAggregate(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  VarianceHistogram vh(n, 0.1, /*payload_size=*/32);
  Xoshiro256 gen(2);
  std::vector<double> payload(32);
  for (std::int64_t t = 0; t < static_cast<std::int64_t>(n); ++t) {
    for (auto& p : payload) p = standard_normal(gen);
    vh.add(t, 1e8 + 1e7 * standard_normal(gen), payload);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(vh.aggregate());
  }
}
BENCHMARK(BM_VarianceHistogramAggregate)->Arg(4032)->Arg(20160);

void BM_ExponentialHistogramAdd(benchmark::State& state) {
  ExponentialHistogram eh(static_cast<std::uint64_t>(state.range(0)), 0.1);
  std::int64_t t = 0;
  for (auto _ : state) {
    eh.add(t++);
  }
  state.counters["buckets"] = static_cast<double>(eh.bucket_count());
}
BENCHMARK(BM_ExponentialHistogramAdd)->Arg(4096)->Arg(65536);

/// A deterministic 64-flow x 256-interval trace for the reader benches.
TraceSet bench_trace() {
  const std::size_t n = 256;
  const std::size_t w = 64;
  Matrix volumes(n, w);
  Xoshiro256 gen(11);
  std::vector<std::string> names;
  names.reserve(w);
  for (std::size_t j = 0; j < w; ++j) names.push_back("f" + std::to_string(j));
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t j = 0; j < w; ++j) {
      volumes(t, j) = 1e8 + 1e7 * standard_normal(gen);
    }
  }
  return TraceSet(std::move(volumes), 300.0, std::move(names));
}

/// Per-batch cost of pulling RecordBatches off a trace file. Arg 0 selects
/// the format (0 = binary, 1 = CSV); the reader is reopened at EOF so the
/// steady state is parse work, not setup.
void BM_ReaderParse(benchmark::State& state) {
  const RecordFormat format =
      state.range(0) == 0 ? RecordFormat::kBinary : RecordFormat::kCsv;
  const std::string path =
      (std::filesystem::temp_directory_path() /
       (format == RecordFormat::kBinary ? "spca_bench_reader.spcr"
                                        : "spca_bench_reader.csv"))
          .string();
  RecordExportOptions options;
  options.format = format;
  options.records_per_cell = 2;
  export_records(bench_trace(), path, options);

  auto reader = std::make_unique<RecordFileReader>(path);
  RecordBatch batch;
  std::uint64_t records = 0;
  for (auto _ : state) {
    std::size_t got = reader->next_batch(batch);
    if (got == 0) {
      state.PauseTiming();
      reader = std::make_unique<RecordFileReader>(path);
      state.ResumeTiming();
      got = reader->next_batch(batch);
    }
    records += got;
    benchmark::DoNotOptimize(batch.records[0].bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
  std::filesystem::remove(path);
}
BENCHMARK(BM_ReaderParse)->Arg(0)->Arg(1);

/// Per-item cost of the lock-free handoff with a live producer thread on
/// the other side of the ring (the replay driver's steady state).
void BM_SpscRing(benchmark::State& state) {
  SpscRing<std::uint64_t> ring(static_cast<std::size_t>(state.range(0)));
  std::thread producer([&ring] {
    std::uint64_t i = 0;
    while (ring.push(std::uint64_t(i))) ++i;
  });
  std::uint64_t item = 0;
  for (auto _ : state) {
    if (!ring.pop(item)) break;
    benchmark::DoNotOptimize(item);
  }
  ring.close();
  // Drain so a producer blocked on a full ring observes the close.
  while (ring.try_pop(item)) {
  }
  producer.join();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpscRing)->Arg(64)->Arg(1024);

/// Per-call cost of add_batch at a given batch size: the SIMD-batched hot
/// path the ingest consumer drives once per interval row.
void BM_SketchAddBatch(benchmark::State& state) {
  const auto batch_size = static_cast<std::size_t>(state.range(0));
  const ProjectionSource projection(ProjectionKind::kTugOfWar, 7);
  FlowSketch sketch(/*window=*/4032, /*epsilon=*/0.1, /*sketch_rows=*/16,
                    projection);
  Xoshiro256 gen(3);
  std::vector<SketchUpdate> updates(batch_size);
  std::int64_t t = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (auto& u : updates) {
      u.t = t++;
      u.volume = 1e8 + 1e7 * standard_normal(gen);
    }
    state.ResumeTiming();
    sketch.add_batch(updates);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(batch_size));
}
BENCHMARK(BM_SketchAddBatch)->Arg(1)->Arg(64)->Arg(512);

}  // namespace

SPCA_BENCHMARK_MAIN_WITH_OBSERVABILITY();
