// Fig. 5 reproduction: a coordinated low-profile traffic anomaly across the
// four OD flows the paper plots (ATLA-CHIC, CHIC-KANS, CHIC-SALT,
// SEAT-SALT). Prints each flow's volume series around the event plus the
// sketch detector's anomaly distance and threshold, showing the distance
// exceeding the threshold exactly when the coordinated bump occurs even
// though each individual flow stays within its normal excursions.
#include <iostream>

#include "bench/support/scenario.hpp"
#include "common/table.hpp"
#include "core/evaluation.hpp"
#include "core/sketch_detector.hpp"

int main(int argc, char** argv) {
  using namespace spca;
  CliFlags flags(
      "fig05_example_anomaly: coordinated low-profile anomaly on four "
      "Abilene OD flows");
  bench::define_scenario_flags(flags);
  flags.define("sketch-rows", "128", "sketch length l");
  flags.define("event-sigma", "3.0",
               "coordinated bump size in per-flow standard deviations");
  try {
    if (!flags.parse(argc, argv)) return 0;
    const bench::Scenario scenario = bench::scenario_from_flags(flags);

    const Topology topo = abilene_topology();
    TrafficModelConfig config;
    config.num_intervals = scenario.total_intervals();
    config.interval_seconds = scenario.interval_seconds;
    config.seed = scenario.seed;
    TraceSet trace = generate_traffic(topo, config);

    const std::vector<FlowId> flows = {
        topo.flow_id("ATLA", "CHIC"), topo.flow_id("CHIC", "KANS"),
        topo.flow_id("CHIC", "SALT"), topo.flow_id("SEAT", "SALT")};
    const std::int64_t event_start =
        static_cast<std::int64_t>(scenario.window + scenario.eval_intervals / 2);
    AnomalyInjector injector(topo, scenario.seed);
    injector.inject_botnet(trace, event_start, 4, flows,
                           flags.real("event-sigma"));

    SketchDetectorConfig detector_config;
    detector_config.window = scenario.window;
    detector_config.epsilon = scenario.epsilon;
    detector_config.sketch_rows =
        static_cast<std::size_t>(flags.integer("sketch-rows"));
    detector_config.alpha = scenario.alpha;
    detector_config.rank_policy = RankPolicy::fixed(6);
    detector_config.seed = scenario.seed ^ 0xf1f5ULL;
    SketchDetector detector(trace.num_flows(), detector_config);
    const DetectorRun run = run_detector(detector, trace);

    std::cout << "# Fig. 5 — coordinated low-profile anomaly, four OD flows\n"
              << "# event: botnet bump on " << flows.size()
              << " flows, intervals [" << event_start << ", "
              << event_start + 3 << "]\n";
    TablePrinter table({"t", "ATLA-CHIC", "CHIC-KANS", "CHIC-SALT",
                        "SEAT-SALT", "distance", "threshold", "alarm"});
    for (std::int64_t t = event_start - 12; t <= event_start + 12; ++t) {
      const auto idx = static_cast<std::size_t>(t);
      const Detection& det = run.detections[idx];
      table.row({std::to_string(t),
                 std::to_string(trace.volumes()(idx, flows[0])),
                 std::to_string(trace.volumes()(idx, flows[1])),
                 std::to_string(trace.volumes()(idx, flows[2])),
                 std::to_string(trace.volumes()(idx, flows[3])),
                 std::to_string(det.distance), std::to_string(det.threshold),
                 det.alarm ? "ALARM" : "-"});
    }
    table.print(std::cout);

    std::size_t alarms_in_event = 0;
    for (std::int64_t t = event_start; t < event_start + 4; ++t) {
      if (run.detections[static_cast<std::size_t>(t)].alarm) {
        ++alarms_in_event;
      }
    }
    std::cout << "\nevent intervals flagged: " << alarms_in_event
              << " / 4\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
