// Microbenchmarks of the TCP transport's event loop: the per-drain dispatch
// cost as the number of multiplexed connections grows, for both readiness
// backends. The epoll loop's wake-up work is O(ready); the poll fallback
// scans every watched descriptor, so its cost grows with the connection
// count even when only one peer is active — exactly the gap that motivated
// the hierarchical deployment's 200-monitor scale target.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dist/message.hpp"
#include "net/poller.hpp"
#include "net/tcp_transport.hpp"
#include "obs/bench_main.hpp"

namespace {

using namespace spca;
using namespace std::chrono_literals;

/// A loopback deployment: one listening endpoint and `conns` dialed peers,
/// all established before the timed loop starts.
struct Deployment {
  std::unique_ptr<TcpTransport> server;
  std::vector<std::unique_ptr<TcpTransport>> clients;

  Deployment(std::size_t conns, PollerBackend backend) {
    TcpTransportConfig sc;
    sc.node_id = kNocId;
    sc.listen_host = "127.0.0.1";
    sc.listen_port = 0;
    sc.io_timeout = 20000ms;
    sc.poller = backend;
    server = std::make_unique<TcpTransport>(sc);
    server->start();
    const std::uint16_t port = server->listen_port();
    for (std::size_t i = 0; i < conns; ++i) {
      TcpTransportConfig cc;
      cc.node_id = static_cast<NodeId>(i + 1);
      cc.peers.push_back({kNocId, "127.0.0.1", port});
      cc.io_timeout = 20000ms;
      clients.push_back(std::make_unique<TcpTransport>(cc));
      clients.back()->start();
    }
    // The handshakes complete asynchronously; a first round-trip from every
    // client proves the whole fan-in is established.
    for (std::size_t i = 0; i < conns; ++i) {
      clients[i]->send(report(static_cast<NodeId>(i + 1), -1));
    }
    std::size_t delivered = 0;
    while (delivered < conns) {
      (void)server->wait_for_mail(kNocId, 100ms);
      delivered += server->drain(kNocId).size();
    }
  }

  static Message report(NodeId from, std::int64_t interval) {
    Message msg;
    msg.type = MessageType::kVolumeReport;
    msg.from = from;
    msg.to = kNocId;
    msg.interval = interval;
    msg.ids = {0, 1, 2, 3};
    msg.values = {1e8, 2e8, 3e8, 4e8};
    return msg;
  }
};

/// One send + wake-up + drain round trip while `conns` connections are
/// watched but only a single peer is active: the cost the backend charges
/// for idle connections. Arg 0 = connection count, arg 1 = backend
/// (0 = poll, 1 = epoll).
void BM_TransportDrain(benchmark::State& state) {
  const auto conns = static_cast<std::size_t>(state.range(0));
  const PollerBackend backend =
      state.range(1) == 0 ? PollerBackend::kPoll : PollerBackend::kEpoll;
  Deployment net(conns, backend);
  std::int64_t interval = 0;
  std::uint64_t drained = 0;
  for (auto _ : state) {
    net.clients[0]->send(Deployment::report(1, interval++));
    std::vector<Message> got;
    while (got.empty()) {
      (void)net.server->wait_for_mail(kNocId, 1000ms);
      got = net.server->drain(kNocId);
    }
    drained += got.size();
    benchmark::DoNotOptimize(got);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(drained));
  state.counters["watched"] =
      static_cast<double>(net.server->watched_connections());
  state.SetLabel(net.server->poller_backend());
}
BENCHMARK(BM_TransportDrain)
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({200, 0})
    ->Args({200, 1})
    ->Unit(benchmark::kMicrosecond);

/// Full fan-in: every connection sends one report and the server drains
/// them all — the per-interval hot path of a NOC (or regional NOC) shard.
void BM_TransportFanIn(benchmark::State& state) {
  const auto conns = static_cast<std::size_t>(state.range(0));
  Deployment net(conns, PollerBackend::kAuto);
  std::int64_t interval = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < conns; ++i) {
      net.clients[i]->send(
          Deployment::report(static_cast<NodeId>(i + 1), interval));
    }
    ++interval;
    std::size_t delivered = 0;
    while (delivered < conns) {
      (void)net.server->wait_for_mail(kNocId, 1000ms);
      delivered += net.server->drain(kNocId).size();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(conns));
  state.SetLabel(net.server->poller_backend());
}
BENCHMARK(BM_TransportFanIn)->Arg(8)->Arg(64)->Arg(200)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

SPCA_BENCHMARK_MAIN_WITH_OBSERVABILITY();
