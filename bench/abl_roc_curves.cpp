// ROC ablation: per-episode detection rate of every detector statistic in
// the library — exact Lakhina SPE, sketch SPE (OD and link space),
// differenced sketch SPE, per-flow EWMA max-z, and the Markov-chain
// surprise — at a sweep of matched empirical false-alarm rates.
//
// Where the figure benches check "does the sketch approximate the exact
// method", this one asks the operator's question: which statistic separates
// anomalies from normal traffic best at the false-alarm budget I can
// afford?
#include <algorithm>
#include <iostream>
#include <memory>

#include "bench/support/scenario.hpp"
#include "common/table.hpp"
#include "core/spca.hpp"
#include "core/differenced_detector.hpp"
#include "core/markov_detector.hpp"
#include "traffic/link_view.hpp"

namespace {

using namespace spca;

struct Curve {
  std::string name;
  std::vector<double> detection_rate;  // aligned with the fp grid
};

/// Detection rate (episodes caught / episodes) at each target false-alarm
/// rate, thresholding the run's distance statistic on clean intervals.
Curve roc_curve(const std::string& name, const DetectorRun& run,
                const TraceSet& trace, const std::vector<double>& fp_grid,
                std::size_t first_eval) {
  std::vector<double> clean;
  for (std::size_t t = first_eval; t < run.detections.size(); ++t) {
    if (run.detections[t].ready &&
        !trace.is_anomalous(static_cast<std::int64_t>(t))) {
      clean.push_back(run.detections[t].distance);
    }
  }
  std::sort(clean.begin(), clean.end());

  Curve curve{name, {}};
  for (const double p : fp_grid) {
    const std::size_t cut = static_cast<std::size_t>(
        (1.0 - p) * static_cast<double>(clean.size()));
    const double threshold = clean[std::min(cut, clean.size() - 1)];
    std::size_t caught = 0;
    for (const auto& event : trace.events()) {
      for (std::int64_t t = event.start; t <= event.end; ++t) {
        const auto idx = static_cast<std::size_t>(t);
        if (idx < run.detections.size() && run.detections[idx].ready &&
            run.detections[idx].distance > threshold) {
          ++caught;
          break;
        }
      }
    }
    curve.detection_rate.push_back(
        static_cast<double>(caught) /
        static_cast<double>(trace.events().size()));
  }
  return curve;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(
      "abl_roc_curves: detection rate vs matched false-alarm budget for "
      "every detector statistic");
  bench::define_scenario_flags(flags);
  flags.define("sketch-rows", "128", "sketch length l");
  try {
    if (!flags.parse(argc, argv)) return 0;
    bench::Scenario scenario = bench::scenario_from_flags(flags);
    const std::vector<double> fp_grid = {0.001, 0.005, 0.01, 0.05, 0.10};

    const Topology topo = abilene_topology();
    const TraceSet trace = bench::make_trace(topo, scenario);
    const Routing routing(topo);
    const TraceSet link_trace = to_link_trace(trace, topo, routing);

    SketchDetectorConfig sketch_config;
    sketch_config.window = scenario.window;
    sketch_config.epsilon = scenario.epsilon;
    sketch_config.sketch_rows =
        static_cast<std::size_t>(flags.integer("sketch-rows"));
    sketch_config.alpha = scenario.alpha;
    sketch_config.rank_policy = RankPolicy::fixed(6);
    sketch_config.seed = scenario.seed;

    LakhinaConfig exact_config;
    exact_config.window = scenario.window;
    exact_config.rank_policy = RankPolicy::fixed(6);
    exact_config.recompute_period = 4;

    EwmaConfig ewma_config;
    ewma_config.warmup = scenario.window;

    MarkovConfig markov_config;
    markov_config.window = scenario.window;
    markov_config.warmup = scenario.window;

    std::vector<Curve> curves;
    {
      LakhinaDetector exact(trace.num_flows(), exact_config);
      curves.push_back(roc_curve("lakhina-exact",
                                 run_detector(exact, trace), trace, fp_grid,
                                 scenario.window));
    }
    {
      SketchDetector sketch(trace.num_flows(), sketch_config);
      curves.push_back(roc_curve("sketch-od", run_detector(sketch, trace),
                                 trace, fp_grid, scenario.window));
    }
    {
      SketchDetector sketch(link_trace.num_flows(), sketch_config);
      curves.push_back(roc_curve("sketch-link",
                                 run_detector(sketch, link_trace),
                                 link_trace, fp_grid, scenario.window));
    }
    {
      DifferencedDetector diff(std::make_unique<SketchDetector>(
          trace.num_flows(), sketch_config));
      curves.push_back(roc_curve("sketch-od+diff",
                                 run_detector(diff, trace), trace, fp_grid,
                                 scenario.window));
    }
    {
      EwmaDetector ewma(trace.num_flows(), ewma_config);
      curves.push_back(roc_curve("ewma-per-flow",
                                 run_detector(ewma, trace), trace, fp_grid,
                                 scenario.window));
    }
    {
      MarkovDetector markov(trace.num_flows(), markov_config);
      curves.push_back(roc_curve("markov-volume",
                                 run_detector(markov, trace), trace, fp_grid,
                                 scenario.window));
    }

    std::cout << "# ROC ablation — episode detection rate at matched "
                 "false-alarm budgets ("
              << trace.events().size() << " mixed episodes)\n";
    std::vector<std::string> header = {"detector"};
    for (const double p : fp_grid) {
      header.push_back("fp=" + std::to_string(p).substr(0, 5));
    }
    TablePrinter table(header);
    for (const auto& curve : curves) {
      std::vector<std::string> row = {curve.name};
      for (const double rate : curve.detection_rate) {
        row.push_back(std::to_string(rate).substr(0, 5));
      }
      table.row(row);
    }
    table.print(std::cout);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
