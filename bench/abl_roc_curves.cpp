// ROC ablation: per-episode detection rate of every detector statistic in
// the library — exact Lakhina SPE, sketch SPE (OD and link space),
// differenced sketch SPE, per-flow EWMA max-z, and the Markov-chain
// surprise — at a sweep of matched empirical false-alarm rates.
//
// Where the figure benches check "does the sketch approximate the exact
// method", this one asks the operator's question: which statistic separates
// anomalies from normal traffic best at the false-alarm budget I can
// afford?
//
// The adversarial-catalog section (--catalog) runs the labelled attack
// scenarios of synth/adversarial.hpp through the ensemble detectors —
// sketch-PCA, robust-PCA (relaxed PCP), the monitor first-line statistic,
// and the fused ensemble — reporting native-threshold Type I/II plus the
// matched-false-alarm ROC per scenario. With --gate the tool pins the
// fused and rpca error rates on the stealth-probe and ddos-ramp scenarios
// (the CI accuracy gate) and exits nonzero on a regression; one JSONL
// record per (scenario, detector) is appended to --out.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>

#include "bench/support/scenario.hpp"
#include "common/table.hpp"
#include "core/spca.hpp"
#include "core/differenced_detector.hpp"
#include "core/markov_detector.hpp"
#include "detect/first_line_detector.hpp"
#include "detect/fused_detector.hpp"
#include "detect/rpca.hpp"
#include "synth/adversarial.hpp"
#include "traffic/link_view.hpp"

namespace {

using namespace spca;

struct Curve {
  std::string name;
  std::vector<double> detection_rate;  // aligned with the fp grid
};

/// Detection rate (episodes caught / episodes) at each target false-alarm
/// rate, thresholding the run's distance statistic on clean intervals.
Curve roc_curve(const std::string& name, const DetectorRun& run,
                const TraceSet& trace, const std::vector<double>& fp_grid,
                std::size_t first_eval) {
  std::vector<double> clean;
  for (std::size_t t = first_eval; t < run.detections.size(); ++t) {
    if (run.detections[t].ready &&
        !trace.is_anomalous(static_cast<std::int64_t>(t))) {
      clean.push_back(run.detections[t].distance);
    }
  }
  std::sort(clean.begin(), clean.end());

  Curve curve{name, {}};
  for (const double p : fp_grid) {
    const std::size_t cut = static_cast<std::size_t>(
        (1.0 - p) * static_cast<double>(clean.size()));
    const double threshold = clean[std::min(cut, clean.size() - 1)];
    std::size_t caught = 0;
    for (const auto& event : trace.events()) {
      for (std::int64_t t = event.start; t <= event.end; ++t) {
        const auto idx = static_cast<std::size_t>(t);
        if (idx < run.detections.size() && run.detections[idx].ready &&
            run.detections[idx].distance > threshold) {
          ++caught;
          break;
        }
      }
    }
    curve.detection_rate.push_back(
        static_cast<double>(caught) /
        static_cast<double>(trace.events().size()));
  }
  return curve;
}

/// One ensemble detector's score on one catalog scenario.
struct CatalogScore {
  std::string scenario;
  std::string detector;
  ConfusionMatrix confusion;
  std::size_t episodes_caught = 0;
  std::size_t episodes = 0;
  Curve curve;
};

CatalogScore score_catalog_run(const AdversarialScenario& scenario,
                               const DetectorRun& run,
                               const std::vector<double>& fp_grid,
                               std::size_t first_eval) {
  CatalogScore score;
  score.scenario = scenario.name;
  score.detector = run.detector_name;
  score.confusion =
      score_against_labels(run, scenario.trace.labels(), first_eval);
  score.episodes = scenario.trace.events().size();
  for (const auto& event : scenario.trace.events()) {
    for (std::int64_t t = event.start; t <= event.end; ++t) {
      const auto idx = static_cast<std::size_t>(t);
      if (idx < run.detections.size() && run.detections[idx].ready &&
          run.detections[idx].alarm) {
        ++score.episodes_caught;
        break;
      }
    }
  }
  score.curve =
      roc_curve(run.detector_name, run, scenario.trace, fp_grid, first_eval);
  return score;
}

const CatalogScore& find_score(const std::vector<CatalogScore>& scores,
                               const std::string& scenario,
                               const std::string& detector) {
  for (const CatalogScore& score : scores) {
    if (score.scenario == scenario && score.detector == detector) {
      return score;
    }
  }
  throw InputError("gate: no score for " + scenario + "/" + detector);
}

/// Runs the four ensemble detectors over the adversarial catalog; returns
/// the process exit code (nonzero on a gate violation).
int run_catalog_section(const CliFlags& flags, const Topology& topo,
                        const std::vector<double>& fp_grid) {
  if (!flags.boolean("catalog") && !flags.boolean("gate")) return 0;

  AdversarialConfig catalog_config;
  catalog_config.window =
      static_cast<std::size_t>(flags.integer("catalog-window"));
  catalog_config.eval_intervals =
      static_cast<std::size_t>(flags.integer("catalog-eval"));
  catalog_config.monitors =
      static_cast<std::size_t>(flags.integer("catalog-monitors"));
  catalog_config.seed =
      static_cast<std::uint64_t>(flags.integer("catalog-seed"));

  SketchDetectorConfig sketch_config;
  sketch_config.window = catalog_config.window;
  sketch_config.epsilon = 0.01;
  sketch_config.sketch_rows =
      static_cast<std::size_t>(flags.integer("sketch-rows"));
  sketch_config.alpha = 0.01;
  sketch_config.rank_policy = RankPolicy::fixed(6);
  sketch_config.seed = catalog_config.seed;

  RpcaDetectorConfig rpca_config;
  rpca_config.window = catalog_config.window;
  rpca_config.recompute_period = 8;
  rpca_config.alpha = 0.01;
  rpca_config.max_iters = 15;
  rpca_config.tol = 1e-5;

  // Slow first-line smoothing: a sustained attack keeps tripping while the
  // EWMA baseline only gradually absorbs the new level. The trip threshold
  // sits below the usual 3-sigma: with the slow baseline the clean-traffic
  // z-scores stay well under 2, so the lower bar buys episode coverage
  // without false alarms.
  FirstLineConfig first_line_config;
  first_line_config.smoothing = 0.02;
  first_line_config.warmup = 24;
  const double score_threshold = 1.75;
  FusionConfig fusion_config;
  fusion_config.score_threshold = score_threshold;

  std::vector<CatalogScore> scores;
  for (const AdversarialScenario& scenario :
       make_adversarial_catalog(topo, catalog_config)) {
    const std::size_t m = scenario.trace.num_flows();
    std::vector<std::unique_ptr<Detector>> detectors;
    detectors.push_back(std::make_unique<SketchDetector>(m, sketch_config));
    detectors.push_back(std::make_unique<RpcaDetector>(m, rpca_config));
    detectors.push_back(std::make_unique<FirstLineDetector>(
        m, catalog_config.monitors, first_line_config, score_threshold));
    detectors.push_back(std::make_unique<FusedDetector>(
        m, catalog_config.monitors, sketch_config, fusion_config,
        first_line_config));

    std::cout << "\n# catalog scenario " << scenario.name << " — "
              << scenario.description << " (" << scenario.trace.events().size()
              << " episode(s))\n";
    std::vector<std::string> header = {"detector", "type I", "type II",
                                       "caught"};
    for (const double p : fp_grid) {
      header.push_back("fp=" + std::to_string(p).substr(0, 5));
    }
    TablePrinter table(header);
    for (const auto& detector : detectors) {
      const DetectorRun run = run_detector(*detector, scenario.trace);
      CatalogScore score = score_catalog_run(scenario, run, fp_grid,
                                             catalog_config.window);
      std::vector<std::string> row = {
          score.detector,
          std::to_string(score.confusion.type1_error()).substr(0, 6),
          std::to_string(score.confusion.type2_error()).substr(0, 6),
          std::to_string(score.episodes_caught) + "/" +
              std::to_string(score.episodes)};
      for (const double rate : score.curve.detection_rate) {
        row.push_back(std::to_string(rate).substr(0, 5));
      }
      table.row(row);
      scores.push_back(std::move(score));
    }
    table.print(std::cout);
  }

  const std::string out_path = flags.str("out");
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::app);
    if (!out) throw InputError("cannot open '" + out_path + "'");
    for (const CatalogScore& score : scores) {
      out << "{\"scenario\": \"" << score.scenario << "\", \"detector\": \""
          << score.detector << "\", \"type1\": "
          << score.confusion.type1_error() << ", \"type2\": "
          << score.confusion.type2_error() << ", \"caught\": "
          << score.episodes_caught << ", \"episodes\": " << score.episodes
          << "}\n";
    }
    std::cout << "\nartifact appended to " << out_path << "\n";
  }

  if (!flags.boolean("gate")) return 0;

  const double max_type1 = flags.real("gate-max-type1");
  const double max_type2_fused = flags.real("gate-max-type2-fused");
  const double max_type2_rpca = flags.real("gate-max-type2-rpca");
  const double min_gain = flags.real("gate-min-stealth-gain");
  int violations = 0;
  const auto pin = [&](const std::string& scenario,
                       const std::string& detector, double max_type2) {
    const CatalogScore& score = find_score(scores, scenario, detector);
    if (score.confusion.type1_error() > max_type1) {
      std::cerr << "FAIL: " << scenario << "/" << detector << " type I "
                << score.confusion.type1_error() << " exceeds " << max_type1
                << "\n";
      ++violations;
    }
    if (score.confusion.type2_error() > max_type2) {
      std::cerr << "FAIL: " << scenario << "/" << detector << " type II "
                << score.confusion.type2_error() << " exceeds " << max_type2
                << "\n";
      ++violations;
    }
    if (score.episodes_caught < score.episodes) {
      std::cerr << "FAIL: " << scenario << "/" << detector << " caught "
                << score.episodes_caught << "/" << score.episodes
                << " episodes\n";
      ++violations;
    }
  };
  pin("stealth-probe", "fused-any", max_type2_fused);
  pin("ddos-ramp", "fused-any", max_type2_fused);
  pin("ddos-ramp", "rpca-pcp", max_type2_rpca);

  const CatalogScore& stealth_fused =
      find_score(scores, "stealth-probe", "fused-any");
  const CatalogScore& stealth_sketch =
      find_score(scores, "stealth-probe", "sketch-pca");
  const double gain = stealth_sketch.confusion.type2_error() -
                      stealth_fused.confusion.type2_error();
  if (gain < min_gain) {
    std::cerr << "FAIL: fused Type II gain over sketch-PCA on stealth-probe "
                 "is "
              << gain << ", below the required " << min_gain << "\n";
    ++violations;
  }
  if (violations > 0) return 1;
  std::cout << "\nOK: fused/rpca within tolerance (type I <= " << max_type1
            << ", fused type II <= " << max_type2_fused
            << ", rpca type II <= " << max_type2_rpca
            << ", stealth fused gain " << gain << " >= " << min_gain << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(
      "abl_roc_curves: detection rate vs matched false-alarm budget for "
      "every detector statistic");
  bench::define_scenario_flags(flags);
  flags.define("sketch-rows", "128", "sketch length l");
  flags.define("statistics", "true",
               "run the per-statistic ROC sweep on the mixed-episode trace");
  flags.define("catalog", "true",
               "run the ensemble detectors on the adversarial catalog");
  flags.define("catalog-window", "96", "catalog detector window n");
  flags.define("catalog-eval", "192", "catalog evaluation span");
  flags.define("catalog-monitors", "4",
               "monitor count of the catalog deployment (stealth target)");
  flags.define("catalog-seed", "2010", "catalog trace seed");
  flags.define("gate", "false",
               "CI accuracy gate: pin fused/rpca Type I/II on the "
               "stealth-probe and ddos-ramp scenarios");
  flags.define("gate-max-type1", "0.30",
               "gate: max Type I error for the pinned detectors (measured "
               "baselines: fused 0.11-0.18, rpca 0.21)");
  flags.define("gate-max-type2-fused", "0.50",
               "gate: max Type II error of the fused ensemble on the pinned "
               "scenarios (measured: 0.43 ddos-ramp, 0.28 stealth-probe)");
  flags.define("gate-max-type2-rpca", "0.20",
               "gate: max Type II error of rpca-pcp on ddos-ramp "
               "(measured: 0.04)");
  flags.define("gate-min-stealth-gain", "0.05",
               "gate: minimum Type II improvement of the fused ensemble "
               "over sketch-PCA alone on stealth-probe");
  flags.define("out", "",
               "JSONL artifact path, one record per scenario/detector "
               "(append mode; empty = no artifact)");
  try {
    if (!flags.parse(argc, argv)) return 0;
    bench::Scenario scenario = bench::scenario_from_flags(flags);
    const std::vector<double> fp_grid = {0.001, 0.005, 0.01, 0.05, 0.10};

    const Topology topo = abilene_topology();
    if (!flags.boolean("statistics")) {
      return run_catalog_section(flags, topo, fp_grid);
    }
    const TraceSet trace = bench::make_trace(topo, scenario);
    const Routing routing(topo);
    const TraceSet link_trace = to_link_trace(trace, topo, routing);

    SketchDetectorConfig sketch_config;
    sketch_config.window = scenario.window;
    sketch_config.epsilon = scenario.epsilon;
    sketch_config.sketch_rows =
        static_cast<std::size_t>(flags.integer("sketch-rows"));
    sketch_config.alpha = scenario.alpha;
    sketch_config.rank_policy = RankPolicy::fixed(6);
    sketch_config.seed = scenario.seed;

    LakhinaConfig exact_config;
    exact_config.window = scenario.window;
    exact_config.rank_policy = RankPolicy::fixed(6);
    exact_config.recompute_period = 4;

    EwmaConfig ewma_config;
    ewma_config.warmup = scenario.window;

    MarkovConfig markov_config;
    markov_config.window = scenario.window;
    markov_config.warmup = scenario.window;

    std::vector<Curve> curves;
    {
      LakhinaDetector exact(trace.num_flows(), exact_config);
      curves.push_back(roc_curve("lakhina-exact",
                                 run_detector(exact, trace), trace, fp_grid,
                                 scenario.window));
    }
    {
      SketchDetector sketch(trace.num_flows(), sketch_config);
      curves.push_back(roc_curve("sketch-od", run_detector(sketch, trace),
                                 trace, fp_grid, scenario.window));
    }
    {
      SketchDetector sketch(link_trace.num_flows(), sketch_config);
      curves.push_back(roc_curve("sketch-link",
                                 run_detector(sketch, link_trace),
                                 link_trace, fp_grid, scenario.window));
    }
    {
      DifferencedDetector diff(std::make_unique<SketchDetector>(
          trace.num_flows(), sketch_config));
      curves.push_back(roc_curve("sketch-od+diff",
                                 run_detector(diff, trace), trace, fp_grid,
                                 scenario.window));
    }
    {
      EwmaDetector ewma(trace.num_flows(), ewma_config);
      curves.push_back(roc_curve("ewma-per-flow",
                                 run_detector(ewma, trace), trace, fp_grid,
                                 scenario.window));
    }
    {
      MarkovDetector markov(trace.num_flows(), markov_config);
      curves.push_back(roc_curve("markov-volume",
                                 run_detector(markov, trace), trace, fp_grid,
                                 scenario.window));
    }

    std::cout << "# ROC ablation — episode detection rate at matched "
                 "false-alarm budgets ("
              << trace.events().size() << " mixed episodes)\n";
    std::vector<std::string> header = {"detector"};
    for (const double p : fp_grid) {
      header.push_back("fp=" + std::to_string(p).substr(0, 5));
    }
    TablePrinter table(header);
    for (const auto& curve : curves) {
      std::vector<std::string> row = {curve.name};
      for (const double rate : curve.detection_rate) {
        row.push_back(std::to_string(rate).substr(0, 5));
      }
      table.row(row);
    }
    table.print(std::cout);

    return run_catalog_section(flags, topo, fp_grid);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
