// Fig. 7 reproduction: Type I and Type II errors of the sketch-based method
// vs the exact Lakhina baseline (taken as ground truth, Sec. VI), swept over
// the normal subspace size r = 1..10 and the sketch length l, with 5-minute
// measurement intervals.
//
// Expected shape (paper): large errors for small r (normal traffic cannot
// be captured), rapid improvement with l, flattening once l exceeds ~200.
#include <iostream>

#include "bench/support/error_surface.hpp"

int main(int argc, char** argv) {
  using namespace spca;
  CliFlags flags(
      "fig07_error_surface_5min: Type I/II error surface over (r, l), "
      "5-minute intervals");
  bench::define_scenario_flags(flags);
  flags.define("l-list", "10,25,50,100,200,400",
               "comma-separated sketch lengths to sweep");
  flags.define("max-rank", "10", "largest normal-subspace size r");
  try {
    if (!flags.parse(argc, argv)) return 0;
    bench::Scenario scenario = bench::scenario_from_flags(flags);
    scenario.interval_seconds = flags.real("interval-seconds");
    std::cout << "# Fig. 7 — sketch vs exact PCA Type I/II errors, "
                 "5-minute intervals\n";
    bench::run_error_surface(scenario,
                             bench::parse_size_list(flags.str("l-list")),
                             static_cast<std::size_t>(flags.integer("max-rank")));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
