// Shared bench machinery: run a detector once over a trace and recover the
// alarm decision for EVERY candidate normal-subspace size r simultaneously.
//
// Both detectors expose distance_profile() (residual distance as a function
// of r for the last observation) and their fitted model's spectrum, so one
// streaming pass yields the full r-sweep of Figs. 7-9 instead of max_rank
// separate runs.
#pragma once

#include <cstdint>
#include <vector>

#include "core/detector.hpp"
#include "pca/pca_model.hpp"
#include "pca/q_statistic.hpp"
#include "traffic/trace.hpp"

namespace spca::bench {

/// Alarm decisions for every rank r = 1..max_rank over one trace run.
struct RankSweepResult {
  /// alarms[r-1][t] is the verdict at rank r for interval t.
  std::vector<std::vector<char>> alarms;
  /// First interval with a verdict.
  std::size_t first_ready = 0;
};

/// Streams `trace` through `detector`, deriving each rank's verdict from the
/// distance profile and the Q-statistic threshold at that rank.
/// `model_of(detector)` must return `const PcaModel*` (nullptr while the
/// model is not yet fitted).
template <typename Detector, typename ModelOf>
RankSweepResult run_rank_sweep(Detector& detector, const TraceSet& trace,
                               std::size_t max_rank, double alpha,
                               ModelOf model_of) {
  RankSweepResult result;
  result.alarms.assign(max_rank,
                       std::vector<char>(trace.num_intervals(), 0));
  result.first_ready = trace.num_intervals();

  for (std::size_t t = 0; t < trace.num_intervals(); ++t) {
    const Detection det =
        detector.observe(static_cast<std::int64_t>(t), trace.row(t));
    if (!det.ready) continue;
    if (result.first_ready == trace.num_intervals()) result.first_ready = t;
    const PcaModel* model = model_of(detector);
    if (model == nullptr) continue;
    const Vector profile = detector.distance_profile();
    for (std::size_t r = 1; r <= max_rank && r <= profile.size(); ++r) {
      const double threshold2 = q_statistic_threshold_squared(
          model->singular_values(), r, model->sample_count(), alpha);
      const double d = profile[r - 1];
      result.alarms[r - 1][t] = d * d > threshold2 ? 1 : 0;
    }
  }
  return result;
}

/// Type I / II errors of `run` against `reference` at one rank, evaluated on
/// intervals where both were ready.
struct TypeErrors {
  double type1 = 0.0;
  double type2 = 0.0;
  std::uint64_t evaluated = 0;
};

inline TypeErrors type_errors(const std::vector<char>& run_alarms,
                              const std::vector<char>& ref_alarms,
                              std::size_t first_eval) {
  std::uint64_t fp = 0, fn = 0, tp = 0, tn = 0;
  for (std::size_t t = first_eval; t < run_alarms.size(); ++t) {
    const bool truth = ref_alarms[t] != 0;
    const bool predicted = run_alarms[t] != 0;
    if (truth && predicted) ++tp;
    if (truth && !predicted) ++fn;
    if (!truth && predicted) ++fp;
    if (!truth && !predicted) ++tn;
  }
  TypeErrors e;
  e.evaluated = tp + fn + fp + tn;
  e.type1 = (fp + tn) == 0 ? 0.0
                           : static_cast<double>(fp) /
                                 static_cast<double>(fp + tn);
  e.type2 = (tp + fn) == 0 ? 0.0
                           : static_cast<double>(fn) /
                                 static_cast<double>(tp + fn);
  return e;
}

}  // namespace spca::bench
