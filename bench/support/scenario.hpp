// Shared evaluation scenario for the figure benches: the Sec. VI setup
// transposed onto the synthetic Abilene substrate.
//
// Paper setting: one month of Abilene OD flows, sliding window of two weeks,
// 5-minute (Figs. 7, 9, 10) and 1-minute (Figs. 8, 9) intervals, eps = 0.01
// in the VH, alpha = 0.01 in the Q-statistic, ground truth = exact Lakhina
// detections at the same r.
//
// Default bench parameters are scaled down (window = 2 days of 5-minute
// intervals) so the full bench suite runs in minutes on one core; pass
// --paper-scale to any figure bench for the full two-week window.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "par/thread_pool.hpp"
#include "synth/anomaly_injector.hpp"
#include "synth/traffic_model.hpp"
#include "traffic/topology.hpp"

namespace spca::bench {

/// Evaluation scenario parameters shared by the figure benches.
struct Scenario {
  double interval_seconds = 300.0;
  std::size_t window = 576;       // detector sliding window n
  std::size_t eval_intervals = 576;  // intervals evaluated after warm-up
  std::size_t anomalies = 20;     // injected labelled episodes
  double epsilon = 0.01;          // VH approximation (paper: 0.01)
  double alpha = 0.01;            // Q-statistic false-alarm rate
  std::uint64_t seed = 2008;      // trace seed (Abilene collection year)

  [[nodiscard]] std::size_t total_intervals() const {
    return window + eval_intervals;
  }
};

/// Registers the shared scenario flags on `flags`.
inline void define_scenario_flags(CliFlags& flags) {
  flags.define("interval-seconds", "300", "measurement interval length");
  flags.define("window", "576", "sliding window length n in intervals");
  flags.define("eval-intervals", "576", "intervals evaluated after warm-up");
  flags.define("anomalies", "20", "labelled anomaly episodes to inject");
  flags.define("epsilon", "0.01", "variance-histogram epsilon");
  flags.define("alpha", "0.01", "Q-statistic false-alarm rate");
  flags.define("seed", "2008", "trace generator seed");
  flags.define("paper-scale", "false",
               "use the paper's full two-week window (slow: n = 4032 at "
               "5-minute intervals)");
  define_threads_flag(flags);
}

/// Builds the scenario from parsed flags and configures the parallel layer
/// from the shared --threads flag.
inline Scenario scenario_from_flags(const CliFlags& flags) {
  (void)configure_threads_from_flag(flags);
  Scenario s;
  s.interval_seconds = flags.real("interval-seconds");
  s.window = static_cast<std::size_t>(flags.integer("window"));
  s.eval_intervals =
      static_cast<std::size_t>(flags.integer("eval-intervals"));
  s.anomalies = static_cast<std::size_t>(flags.integer("anomalies"));
  s.epsilon = flags.real("epsilon");
  s.alpha = flags.real("alpha");
  s.seed = static_cast<std::uint64_t>(flags.integer("seed"));
  if (flags.boolean("paper-scale")) {
    // Two-week window at the configured interval length, one month total.
    s.window = static_cast<std::size_t>(14.0 * 86400.0 / s.interval_seconds);
    s.eval_intervals = s.window;
  }
  return s;
}

/// Generates the labelled Abilene trace of the scenario.
inline TraceSet make_trace(const Topology& topology, const Scenario& s) {
  TrafficModelConfig config;
  config.num_intervals = s.total_intervals();
  config.interval_seconds = s.interval_seconds;
  config.seed = s.seed;
  TraceSet trace = generate_traffic(topology, config);
  if (s.anomalies > 0) {
    AnomalyInjector injector(topology, s.seed ^ 0x5eedULL);
    (void)injector.inject_mixture(
        trace, s.anomalies, static_cast<std::int64_t>(s.window),
        static_cast<std::int64_t>(trace.num_intervals()));
  }
  return trace;
}

/// Parses a comma-separated list of integers (for --l-list style flags).
inline std::vector<std::size_t> parse_size_list(const std::string& text) {
  std::vector<std::size_t> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string token =
        text.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!token.empty()) out.push_back(std::stoul(token));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace spca::bench
