#!/usr/bin/env python3
"""Perf-regression gate over the JSONL bench records.

Compares a fresh --bench-json capture against a committed baseline
(bench/baselines/BENCH_micro.json by default). Records are matched on
(suite, name, threads); a benchmark whose ns_per_op grew by more than
--tolerance (default 15%) fails the gate with exit code 1.

Benchmarks present on only one side are reported but never fail the gate:
the baseline may carry suites the current run did not exercise, and a new
benchmark has no baseline yet.

Usage:
  check_bench_regression.py CURRENT.json [--baseline BASELINE.json]
                            [--tolerance 0.15]
"""

import argparse
import json
import sys


def load_records(path):
    """Reads a JSONL bench file into {(suite, name, threads): ns_per_op}."""
    records = {}
    with open(path, "r", encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
                key = (rec["suite"], rec["name"], int(rec["threads"]))
                ns = float(rec["ns_per_op"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as e:
                raise SystemExit(f"{path}:{line_no}: malformed record: {e}")
            # Repeated runs of the same benchmark: keep the fastest, which is
            # the standard way to suppress scheduler noise on shared runners.
            if key not in records or ns < records[key]:
                records[key] = ns
    return records


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly captured --bench-json file")
    parser.add_argument("--baseline",
                        default="bench/baselines/BENCH_micro.json")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional slowdown (0.15 = +15%%)")
    args = parser.parse_args()

    baseline = load_records(args.baseline)
    current = load_records(args.current)

    regressions = []
    compared = 0
    for key, ns in sorted(current.items()):
        base = baseline.get(key)
        if base is None:
            print(f"  new (no baseline): {key[0]}/{key[1]} t={key[2]}")
            continue
        compared += 1
        ratio = ns / base if base > 0 else float("inf")
        marker = ""
        if ratio > 1.0 + args.tolerance:
            regressions.append((key, base, ns, ratio))
            marker = "  <-- REGRESSION"
        print(f"  {key[0]}/{key[1]} t={key[2]}: "
              f"{base:.1f} -> {ns:.1f} ns/op ({ratio - 1.0:+.1%}){marker}")

    if compared == 0:
        raise SystemExit("no benchmark matched the baseline — "
                         "wrong file or empty capture?")

    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
              f"{args.tolerance:.0%}:")
        for key, base, ns, ratio in regressions:
            print(f"  {key[0]}/{key[1]} t={key[2]}: "
                  f"{base:.1f} -> {ns:.1f} ns/op ({ratio - 1.0:+.1%})")
        return 1

    print(f"\nOK: {compared} benchmark(s) within {args.tolerance:.0%} "
          "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
