// The Fig. 7/8 experiment body: Type I / Type II error of the sketch-based
// detector against exact Lakhina ground truth, swept over the normal
// subspace size r and the sketch length l (Sec. VI protocol).
#pragma once

#include <iostream>

#include "bench/support/rank_sweep.hpp"
#include "bench/support/scenario.hpp"
#include "common/table.hpp"
#include "core/lakhina_detector.hpp"
#include "core/sketch_detector.hpp"

namespace spca::bench {

/// Runs the error-surface sweep and prints one row per (r, l) point.
inline void run_error_surface(const Scenario& scenario,
                              const std::vector<std::size_t>& l_values,
                              std::size_t max_rank) {
  const Topology topo = abilene_topology();
  const TraceSet trace = make_trace(topo, scenario);
  const std::size_t m = trace.num_flows();

  std::cerr << "[error-surface] intervals=" << trace.num_intervals()
            << " window=" << scenario.window << " flows=" << m
            << " interval=" << scenario.interval_seconds << "s\n";

  // Ground truth: one exact Lakhina pass provides verdicts for all ranks.
  LakhinaConfig exact_config;
  exact_config.window = scenario.window;
  exact_config.alpha = scenario.alpha;
  exact_config.rank_policy = RankPolicy::fixed(6);  // rank irrelevant: sweep
  exact_config.recompute_period = 4;
  LakhinaDetector exact(m, exact_config);
  const RankSweepResult truth = run_rank_sweep(
      exact, trace, max_rank, scenario.alpha, [](const LakhinaDetector& d) {
        return d.model() ? &*d.model() : nullptr;
      });

  TablePrinter table({"l", "r", "type1", "type2", "evaluated"});
  for (const std::size_t l : l_values) {
    SketchDetectorConfig config;
    config.window = scenario.window;
    config.epsilon = scenario.epsilon;
    config.sketch_rows = l;
    config.alpha = scenario.alpha;
    config.rank_policy = RankPolicy::fixed(6);  // rank irrelevant: sweep
    config.seed = scenario.seed ^ 0x51e7c4ULL;
    SketchDetector sketch(m, config);
    const RankSweepResult run = run_rank_sweep(
        sketch, trace, max_rank, scenario.alpha,
        [](const SketchDetector& d) {
          return d.model().fitted() ? &d.model() : nullptr;
        });

    const std::size_t first_eval =
        std::max(truth.first_ready, run.first_ready);
    for (std::size_t r = 1; r <= max_rank; ++r) {
      const TypeErrors e =
          type_errors(run.alarms[r - 1], truth.alarms[r - 1], first_eval);
      table.row({std::to_string(l), std::to_string(r),
                 std::to_string(e.type1), std::to_string(e.type2),
                 std::to_string(e.evaluated)});
    }
  }
  table.print(std::cout);
}

}  // namespace spca::bench
