// Microbenchmarks of the linear-algebra kernels on the PCA hot path.
#include <benchmark/benchmark.h>

#include "linalg/eigen_sym.hpp"
#include "linalg/qr.hpp"
#include "linalg/rand_range.hpp"
#include "linalg/svd.hpp"
#include "obs/bench_main.hpp"
#include "par/thread_pool.hpp"
#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"

namespace {

using namespace spca;

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Xoshiro256 gen(seed);
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = standard_normal(gen);
  }
  return m;
}

void BM_Gram(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const Matrix a = random_matrix(n, m, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gram(a));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n * m * m));
}
BENCHMARK(BM_Gram)->Args({256, 81})->Args({1024, 81})->Args({4032, 81});

void BM_EigenSymmetric(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const Matrix g = gram(random_matrix(2 * m, m, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eigen_symmetric(g));
  }
}
BENCHMARK(BM_EigenSymmetric)->Arg(16)->Arg(41)->Arg(81)->Arg(121);

void BM_EigenSymmetricWarm(benchmark::State& state) {
  // The streaming refresh case: warm-start from the basis of a slightly
  // older matrix. Compare against BM_EigenSymmetric (cold) at equal m.
  const auto m = static_cast<std::size_t>(state.range(0));
  const Matrix g = gram(random_matrix(2 * m, m, 2));
  Matrix perturbed = g;
  Xoshiro256 gen(7);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i; j < m; ++j) {
      const double d = 1e-4 * standard_normal(gen) * g(0, 0);
      perturbed(i, j) += d;
      perturbed(j, i) = perturbed(i, j);
    }
  }
  const EigenSym base = eigen_symmetric(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eigen_symmetric_warm(perturbed, base.vectors));
  }
}
BENCHMARK(BM_EigenSymmetricWarm)->Arg(41)->Arg(81)->Arg(121);

void BM_RandRangeFinder(benchmark::State& state) {
  // The rsvd backend's refit kernel: top-(k+p) eigenpairs of the m x m Gram
  // via the seeded randomized range finder at the backend's default knobs
  // (k = 12, p = 8, q = 2). Compare against BM_EigenSymmetric (the exact
  // cold solve) at equal m.
  const auto m = static_cast<std::size_t>(state.range(0));
  const Matrix g = gram(random_matrix(2 * m, m, 2));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rand_eigen_top_k(g, 12, 8, 2, seed++));
  }
}
BENCHMARK(BM_RandRangeFinder)->Arg(41)->Arg(81)->Arg(121);

void BM_EigenTopK(benchmark::State& state) {
  // Only the r leading components: orthogonal iteration at k = 6.
  const auto m = static_cast<std::size_t>(state.range(0));
  const Matrix g = gram(random_matrix(2 * m, m, 3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eigen_top_k(g, 6, 1e-8));
  }
}
BENCHMARK(BM_EigenTopK)->Arg(41)->Arg(81)->Arg(121);

void BM_SvdSketchShape(benchmark::State& state) {
  // The NOC decomposition: l x m sketch matrices.
  const auto l = static_cast<std::size_t>(state.range(0));
  const Matrix z = random_matrix(l, 81, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(svd(z, /*want_left=*/false));
  }
}
BENCHMARK(BM_SvdSketchShape)->Arg(10)->Arg(50)->Arg(200)->Arg(400);

void BM_SvdWindowShape(benchmark::State& state) {
  // The Lakhina decomposition: n x m window matrices.
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix y = random_matrix(n, 81, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(svd(y, /*want_left=*/false));
  }
}
BENCHMARK(BM_SvdWindowShape)->Arg(576)->Arg(2016)->Unit(benchmark::kMillisecond);

void BM_BlockedMultiply(benchmark::State& state) {
  // The cache-tiled matmul kernel across the threads sweep. Square shapes
  // large enough to clear the kernel's inline-grain threshold.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const std::size_t saved = global_threads();
  set_global_threads(threads);
  const Matrix a = random_matrix(n, n, 8);
  const Matrix b = random_matrix(n, n, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(multiply(a, b));
  }
  set_global_threads(saved);
}
BENCHMARK(BM_BlockedMultiply)
    ->Args({192, 1})
    ->Args({192, 2})
    ->Args({192, 4})
    ->Args({384, 1})
    ->Args({384, 2})
    ->Args({384, 4});

void BM_QrThreads(benchmark::State& state) {
  // Householder QR with parallel trailing updates, threads sweep.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const std::size_t saved = global_threads();
  set_global_threads(threads);
  const Matrix a = random_matrix(n, n / 2, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qr(a));
  }
  set_global_threads(saved);
}
BENCHMARK(BM_QrThreads)->Args({512, 1})->Args({512, 2})->Args({512, 4});

void BM_GramThreads(benchmark::State& state) {
  // gram() across the threads sweep at the fig. 7 trace shape.
  const auto threads = static_cast<std::size_t>(state.range(0));
  const std::size_t saved = global_threads();
  set_global_threads(threads);
  const Matrix a = random_matrix(4032, 81, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gram(a));
  }
  set_global_threads(saved);
}
BENCHMARK(BM_GramThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_MatVec(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(m, m, 5);
  Xoshiro256 gen(6);
  Vector x(m);
  for (std::size_t j = 0; j < m; ++j) x[j] = standard_normal(gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(multiply(a, x));
  }
}
BENCHMARK(BM_MatVec)->Arg(81)->Arg(256);

}  // namespace

SPCA_BENCHMARK_MAIN_WITH_OBSERVABILITY();
