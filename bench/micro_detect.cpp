// Microbenchmarks of the detector hot paths: per-interval observe cost for
// the sketch method vs the exact baseline, at Abilene scale (m = 81).
#include <benchmark/benchmark.h>

#include "core/lakhina_detector.hpp"
#include "core/sketch_detector.hpp"
#include "obs/bench_main.hpp"
#include "synth/traffic_model.hpp"

namespace {

using namespace spca;

const TraceSet& shared_trace() {
  static const TraceSet trace = [] {
    TrafficModelConfig config;
    config.num_intervals = 2048;
    config.seed = 3;
    return generate_traffic(abilene_topology(), config);
  }();
  return trace;
}

void BM_SketchObserve(benchmark::State& state) {
  const TraceSet& trace = shared_trace();
  SketchDetectorConfig config;
  config.window = 512;
  config.sketch_rows = static_cast<std::size_t>(state.range(0));
  config.rank_policy = RankPolicy::fixed(6);
  SketchDetector detector(trace.num_flows(), config);
  std::int64_t t = 0;
  // Warm through the window first so observe() includes detection work.
  for (; t < 512; ++t) {
    (void)detector.observe(t, trace.row(static_cast<std::size_t>(t) %
                                        trace.num_intervals()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.observe(
        t, trace.row(static_cast<std::size_t>(t) % trace.num_intervals())));
    ++t;
  }
}
BENCHMARK(BM_SketchObserve)->Arg(50)->Arg(200)->Unit(benchmark::kMicrosecond);

void BM_LakhinaObserve(benchmark::State& state) {
  const TraceSet& trace = shared_trace();
  LakhinaConfig config;
  config.window = 512;
  config.rank_policy = RankPolicy::fixed(6);
  config.recompute_period = static_cast<std::size_t>(state.range(0));
  LakhinaDetector detector(trace.num_flows(), config);
  std::int64_t t = 0;
  for (; t < 512; ++t) {
    (void)detector.observe(t, trace.row(static_cast<std::size_t>(t) %
                                        trace.num_intervals()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.observe(
        t, trace.row(static_cast<std::size_t>(t) % trace.num_intervals())));
    ++t;
  }
}
BENCHMARK(BM_LakhinaObserve)->Arg(1)->Arg(8)->Unit(benchmark::kMicrosecond);

}  // namespace

SPCA_BENCHMARK_MAIN_WITH_OBSERVABILITY();
