// Microbenchmarks of the detector hot paths: per-interval observe cost for
// the sketch method vs the exact baseline, at Abilene scale (m = 81).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "core/lakhina_detector.hpp"
#include "core/sketch_detector.hpp"
#include "obs/bench_main.hpp"
#include "pca/backend/model_backend.hpp"
#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"
#include "synth/traffic_model.hpp"

namespace {

using namespace spca;

const TraceSet& shared_trace() {
  static const TraceSet trace = [] {
    TrafficModelConfig config;
    config.num_intervals = 2048;
    config.seed = 3;
    return generate_traffic(abilene_topology(), config);
  }();
  return trace;
}

void BM_SketchObserve(benchmark::State& state) {
  const TraceSet& trace = shared_trace();
  SketchDetectorConfig config;
  config.window = 512;
  config.sketch_rows = static_cast<std::size_t>(state.range(0));
  config.rank_policy = RankPolicy::fixed(6);
  SketchDetector detector(trace.num_flows(), config);
  std::int64_t t = 0;
  // Warm through the window first so observe() includes detection work.
  for (; t < 512; ++t) {
    (void)detector.observe(t, trace.row(static_cast<std::size_t>(t) %
                                        trace.num_intervals()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.observe(
        t, trace.row(static_cast<std::size_t>(t) % trace.num_intervals())));
    ++t;
  }
}
BENCHMARK(BM_SketchObserve)->Arg(50)->Arg(200)->Unit(benchmark::kMicrosecond);

void BM_LakhinaObserve(benchmark::State& state) {
  const TraceSet& trace = shared_trace();
  LakhinaConfig config;
  config.window = 512;
  config.rank_policy = RankPolicy::fixed(6);
  config.recompute_period = static_cast<std::size_t>(state.range(0));
  LakhinaDetector detector(trace.num_flows(), config);
  std::int64_t t = 0;
  for (; t < 512; ++t) {
    (void)detector.observe(t, trace.row(static_cast<std::size_t>(t) %
                                        trace.num_intervals()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.observe(
        t, trace.row(static_cast<std::size_t>(t) % trace.num_intervals())));
    ++t;
  }
}
BENCHMARK(BM_LakhinaObserve)->Arg(1)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_NocRefitBackend(benchmark::State& state, ModelBackendKind kind) {
  // One NOC model refit at the lazy protocol's sketch shape (l = 200 rows,
  // m flows): the dominant recurring cost of a network-wide deployment.
  // Successive refits see slowly drifting rows, the steady-traffic regime
  // where the warm backend stays on its warm-start path; exact re-solves
  // cold every time, so the ratio at equal m is the speedup the default
  // buys. m = 121 is the tier-1 topology above Abilene (11x11 OD pairs).
  const auto m = static_cast<std::size_t>(state.range(0));
  const std::size_t l = 200;
  Xoshiro256 gen(2);
  Matrix base(l, m);
  for (std::size_t i = 0; i < l; ++i) {
    for (std::size_t j = 0; j < m; ++j) base(i, j) = standard_normal(gen);
  }
  constexpr std::size_t kVariants = 4;
  std::vector<Matrix> drifted;
  drifted.reserve(kVariants);
  for (std::size_t v = 0; v < kVariants; ++v) {
    Matrix z = base;
    for (std::size_t i = 0; i < l; ++i) {
      for (std::size_t j = 0; j < m; ++j) z(i, j) += 1e-4 * standard_normal(gen);
    }
    drifted.push_back(std::move(z));
  }
  ModelBackendConfig config;
  config.kind = kind;
  const auto backend = make_model_backend(config, m);
  if (backend->wants_rows()) {
    for (std::size_t i = 0; i < l; ++i) backend->absorb_row(base.row_span(i));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(backend->fit_rows(
        drifted[i % kVariants], Vector(m), static_cast<std::uint64_t>(2 * m)));
    ++i;
  }
}
BENCHMARK_CAPTURE(BM_NocRefitBackend, exact, ModelBackendKind::kExact)
    ->Arg(81)->Arg(121)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_NocRefitBackend, warm, ModelBackendKind::kWarm)
    ->Arg(81)->Arg(121)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_NocRefitBackend, rsvd, ModelBackendKind::kRsvd)
    ->Arg(81)->Arg(121)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_NocRefitBackend, fd, ModelBackendKind::kFd)
    ->Arg(81)->Arg(121)->Unit(benchmark::kMillisecond);

}  // namespace

SPCA_BENCHMARK_MAIN_WITH_OBSERVABILITY();
