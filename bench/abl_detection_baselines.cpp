// Motivation ablation (Sec. I): why network-wide spatial analysis at all?
// Compares three detection statistics on a campaign of purely *coordinated
// low-profile* botnet anomalies:
//   * ewma-per-flow   — max per-flow EWMA z-score (no spatial view)
//   * sketch-pca      — the paper's SPE residual on OD flows
//   * sketch-pca-link — the same on per-link loads (the data Lakhina'04
//                       originally used, via the routing matrix)
//
// Raw Q-statistic / k-sigma thresholds have very different operating
// points on LRD + diurnal traffic, so the comparison is made at a *matched
// empirical false-alarm rate*: each detector's threshold is set to the
// (1 - p) quantile of its statistic on clean intervals, and episode
// detection rates are compared at that common p. Expected: at equal false
// alarms, the spatial statistics separate coordinated low-profile episodes
// far better than the per-flow statistic.
#include <algorithm>
#include <iostream>

#include "bench/support/scenario.hpp"
#include "common/table.hpp"
#include "core/evaluation.hpp"
#include "core/ewma_detector.hpp"
#include "core/sketch_detector.hpp"
#include "rand/splitmix64.hpp"
#include "traffic/link_view.hpp"

namespace {

using namespace spca;

/// Episode detection at a threshold chosen so that exactly a `p` fraction
/// of clean ready intervals exceed it.
struct RocPoint {
  double threshold = 0.0;
  double false_alarm_rate = 0.0;
  std::size_t episodes_caught = 0;
};

RocPoint evaluate_at_matched_fp(const DetectorRun& run,
                                const TraceSet& trace, double p,
                                std::size_t first_eval) {
  std::vector<double> clean;
  for (std::size_t t = first_eval; t < run.detections.size(); ++t) {
    if (!run.detections[t].ready) continue;
    if (!trace.is_anomalous(static_cast<std::int64_t>(t))) {
      clean.push_back(run.detections[t].distance);
    }
  }
  std::sort(clean.begin(), clean.end());
  const std::size_t cut = static_cast<std::size_t>(
      (1.0 - p) * static_cast<double>(clean.size()));
  RocPoint roc;
  roc.threshold = clean[std::min(cut, clean.size() - 1)];

  std::size_t fp = 0;
  for (const double d : clean) {
    if (d > roc.threshold) ++fp;
  }
  roc.false_alarm_rate =
      static_cast<double>(fp) / static_cast<double>(clean.size());

  for (const auto& event : trace.events()) {
    for (std::int64_t t = event.start; t <= event.end; ++t) {
      const auto idx = static_cast<std::size_t>(t);
      if (run.detections[idx].ready &&
          run.detections[idx].distance > roc.threshold) {
        ++roc.episodes_caught;
        break;
      }
    }
  }
  return roc;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(
      "abl_detection_baselines: per-flow EWMA vs sketch-PCA (OD and link "
      "space) on coordinated low-profile anomalies, at matched false-alarm "
      "rates");
  bench::define_scenario_flags(flags);
  flags.define("sketch-rows", "128", "sketch length l");
  flags.define("episodes", "14", "coordinated botnet episodes");
  flags.define("episode-sigma", "3.0",
               "per-flow bump in LOCAL (detrended) std deviations");
  flags.define("flows-per-episode", "24", "flows participating per episode");
  flags.define("target-fp", "0.01", "matched false-alarm rate");
  try {
    if (!flags.parse(argc, argv)) return 0;
    const bench::Scenario scenario = bench::scenario_from_flags(flags);
    const auto episodes =
        static_cast<std::size_t>(flags.integer("episodes"));
    const auto flows_per =
        static_cast<std::size_t>(flags.integer("flows-per-episode"));
    const double sigma = flags.real("episode-sigma");
    const double target_fp = flags.real("target-fp");

    const Topology topo = abilene_topology();
    TrafficModelConfig traffic;
    traffic.num_intervals = scenario.total_intervals();
    traffic.interval_seconds = scenario.interval_seconds;
    traffic.seed = scenario.seed;
    // Stationary regime: this ablation isolates the spatial dimension
    // (coordinated vs per-flow) from PCA's separate, well-documented
    // sensitivity to diurnal nonstationarity (Ringberg et al., ref [2]).
    traffic.diurnal.daily_amplitude = 0.0;
    traffic.diurnal.harmonic_amplitude = 0.0;
    traffic.diurnal.weekend_dip = 0.0;
    TraceSet trace = generate_traffic(topo, traffic);

    // Coordinated botnet episodes only, spaced across the eval region.
    AnomalyInjector injector(topo, scenario.seed ^ 0xb07ULL);
    SplitMix64 pick(scenario.seed ^ 0x11ULL);
    const std::int64_t eval_span =
        static_cast<std::int64_t>(scenario.eval_intervals);
    for (std::size_t e = 0; e < episodes; ++e) {
      const std::int64_t start =
          static_cast<std::int64_t>(scenario.window) +
          static_cast<std::int64_t>(e) * eval_span /
              static_cast<std::int64_t>(episodes) +
          2;
      std::vector<FlowId> flows;
      while (flows.size() < flows_per) {
        const FlowId f = static_cast<FlowId>(pick() % topo.num_od_flows());
        const OdPair od = od_pair_of(f, topo.num_routers());
        if (od.origin == od.destination) continue;
        if (std::find(flows.begin(), flows.end(), f) == flows.end()) {
          flows.push_back(f);
        }
      }
      injector.inject_botnet_local(trace, start, 3, flows, sigma);
    }

    const Routing routing(topo);
    const TraceSet link_trace = to_link_trace(trace, topo, routing);

    TablePrinter table({"detector", "space", "episodes_caught",
                        "matched_fp", "threshold"});
    const auto add_row = [&](const char* name, const char* space,
                             const DetectorRun& run,
                             const TraceSet& labelled) {
      const RocPoint roc = evaluate_at_matched_fp(run, labelled, target_fp,
                                                  scenario.window);
      table.row({name, space,
                 std::to_string(roc.episodes_caught) + "/" +
                     std::to_string(labelled.events().size()),
                 std::to_string(roc.false_alarm_rate),
                 std::to_string(roc.threshold)});
    };

    {
      EwmaConfig config;
      config.warmup = scenario.window;
      EwmaDetector ewma(trace.num_flows(), config);
      const DetectorRun run = run_detector(ewma, trace);
      add_row("ewma-per-flow", "od", run, trace);
    }
    {
      SketchDetectorConfig config;
      config.window = scenario.window;
      config.epsilon = scenario.epsilon;
      config.sketch_rows =
          static_cast<std::size_t>(flags.integer("sketch-rows"));
      config.alpha = scenario.alpha;
      config.rank_policy = RankPolicy::fixed(6);
      config.seed = scenario.seed;
      SketchDetector sketch(trace.num_flows(), config);
      const DetectorRun run = run_detector(sketch, trace);
      add_row("sketch-pca", "od", run, trace);

      SketchDetector link_sketch(link_trace.num_flows(), config);
      const DetectorRun link_run = run_detector(link_sketch, link_trace);
      add_row("sketch-pca", "link", link_run, link_trace);
    }
    std::cout << "# Ablation — spatial PCA vs per-flow baseline on "
                 "coordinated low-profile anomalies ("
              << flows_per << " flows x " << sigma
              << " local-sigma), thresholds matched to " << target_fp
              << " false-alarm rate\n";
    table.print(std::cout);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
