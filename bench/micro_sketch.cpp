// Microbenchmarks of the per-flow sketch: the O(l) update of Fig. 3 Step 2
// and the sketch emission of eq. (17).
#include <benchmark/benchmark.h>

#include "obs/bench_main.hpp"
#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"
#include "sketch/flow_sketch.hpp"
#include "sketch/random_projection.hpp"

namespace {

using namespace spca;

void BM_FlowSketchAdd(benchmark::State& state) {
  const auto l = static_cast<std::size_t>(state.range(0));
  const ProjectionSource source(ProjectionKind::kTugOfWar, 1);
  FlowSketch sketch(4032, 0.01, l, source);
  Xoshiro256 gen(2);
  std::int64_t t = 0;
  for (auto _ : state) {
    sketch.add(t++, 1e8 + 1e7 * standard_normal(gen));
  }
}
BENCHMARK(BM_FlowSketchAdd)->Arg(10)->Arg(50)->Arg(200)->Arg(400);

void BM_FlowSketchAddGaussian(benchmark::State& state) {
  // The Gaussian scheme evaluates two hashes + Box-Muller per coefficient.
  const auto l = static_cast<std::size_t>(state.range(0));
  const ProjectionSource source(ProjectionKind::kGaussian, 1);
  FlowSketch sketch(4032, 0.01, l, source);
  Xoshiro256 gen(3);
  std::int64_t t = 0;
  for (auto _ : state) {
    sketch.add(t++, 1e8 + 1e7 * standard_normal(gen));
  }
}
BENCHMARK(BM_FlowSketchAddGaussian)->Arg(50)->Arg(200);

void BM_FlowSketchEmit(benchmark::State& state) {
  const auto l = static_cast<std::size_t>(state.range(0));
  const ProjectionSource source(ProjectionKind::kTugOfWar, 1);
  FlowSketch sketch(4032, 0.05, l, source);
  Xoshiro256 gen(4);
  for (std::int64_t t = 0; t < 4032; ++t) {
    sketch.add(t, 1e8 + 1e7 * standard_normal(gen));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.sketch());
  }
  state.counters["buckets"] = static_cast<double>(sketch.bucket_count());
}
BENCHMARK(BM_FlowSketchEmit)->Arg(50)->Arg(200)->Arg(400);

void BM_ProjectionCoefficient(benchmark::State& state) {
  const auto kind = static_cast<ProjectionKind>(state.range(0));
  const ProjectionSource source(kind, 9, 3.0);
  std::int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(source.value(t++, 3));
  }
}
BENCHMARK(BM_ProjectionCoefficient)
    ->Arg(static_cast<int>(ProjectionKind::kGaussian))
    ->Arg(static_cast<int>(ProjectionKind::kTugOfWar))
    ->Arg(static_cast<int>(ProjectionKind::kSparse));

}  // namespace

SPCA_BENCHMARK_MAIN_WITH_OBSERVABILITY();
