// Microbenchmarks of the per-flow sketch: the O(l) update of Fig. 3 Step 2
// and the sketch emission of eq. (17).
#include <benchmark/benchmark.h>

#include <vector>

#include "obs/bench_main.hpp"
#include "par/thread_pool.hpp"
#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"
#include "sketch/flow_sketch.hpp"
#include "sketch/random_projection.hpp"

namespace {

using namespace spca;

void BM_FlowSketchAdd(benchmark::State& state) {
  const auto l = static_cast<std::size_t>(state.range(0));
  const ProjectionSource source(ProjectionKind::kTugOfWar, 1);
  FlowSketch sketch(4032, 0.01, l, source);
  Xoshiro256 gen(2);
  std::int64_t t = 0;
  for (auto _ : state) {
    sketch.add(t++, 1e8 + 1e7 * standard_normal(gen));
  }
}
BENCHMARK(BM_FlowSketchAdd)->Arg(10)->Arg(50)->Arg(200)->Arg(400);

void BM_FlowSketchAddGaussian(benchmark::State& state) {
  // The Gaussian scheme evaluates two hashes + Box-Muller per coefficient.
  const auto l = static_cast<std::size_t>(state.range(0));
  const ProjectionSource source(ProjectionKind::kGaussian, 1);
  FlowSketch sketch(4032, 0.01, l, source);
  Xoshiro256 gen(3);
  std::int64_t t = 0;
  for (auto _ : state) {
    sketch.add(t++, 1e8 + 1e7 * standard_normal(gen));
  }
}
BENCHMARK(BM_FlowSketchAddGaussian)->Arg(50)->Arg(200);

void BM_FlowSketchEmit(benchmark::State& state) {
  const auto l = static_cast<std::size_t>(state.range(0));
  const ProjectionSource source(ProjectionKind::kTugOfWar, 1);
  FlowSketch sketch(4032, 0.05, l, source);
  Xoshiro256 gen(4);
  for (std::int64_t t = 0; t < 4032; ++t) {
    sketch.add(t, 1e8 + 1e7 * standard_normal(gen));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.sketch());
  }
  state.counters["buckets"] = static_cast<double>(sketch.bucket_count());
}
BENCHMARK(BM_FlowSketchEmit)->Arg(50)->Arg(200)->Arg(400);

void BM_MonitorIntervalClose(benchmark::State& state) {
  // The LocalMonitor interval-close hot path: a bank of w per-flow sketch
  // updates fanned out across the pool. Arg pair = (flows, threads); the
  // threads sweep is what the BENCH_micro.json speedup column reads.
  const auto flows = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const std::size_t saved = global_threads();
  set_global_threads(threads);
  const ProjectionSource source(ProjectionKind::kTugOfWar, 1);
  std::vector<FlowSketch> bank;
  bank.reserve(flows);
  for (std::size_t i = 0; i < flows; ++i) {
    bank.emplace_back(4032, 0.01, 50, source);
  }
  Xoshiro256 gen(5);
  Vector volumes(flows);
  for (std::size_t i = 0; i < flows; ++i) {
    volumes[i] = 1e8 + 1e7 * standard_normal(gen);
  }
  std::int64_t t = 0;
  for (auto _ : state) {
    const std::int64_t now = t++;
    global_pool().parallel_for(0, flows, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        bank[i].add(now, volumes[i]);
      }
    });
  }
  set_global_threads(saved);
}
BENCHMARK(BM_MonitorIntervalClose)
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({64, 4})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4});

void BM_SketchResponseEmit(benchmark::State& state) {
  // The sketch-response emission path: w report_into calls with per-lane
  // scratch, parallelized the same way LocalMonitor::make_sketch_response is.
  const auto flows = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const std::size_t saved = global_threads();
  set_global_threads(threads);
  constexpr std::size_t kRows = 50;
  const ProjectionSource source(ProjectionKind::kTugOfWar, 1);
  std::vector<FlowSketch> bank;
  bank.reserve(flows);
  Xoshiro256 gen(6);
  for (std::size_t i = 0; i < flows; ++i) {
    bank.emplace_back(4032, 0.05, kRows, source);
  }
  for (std::int64_t t = 0; t < 1024; ++t) {
    for (std::size_t i = 0; i < flows; ++i) {
      bank[i].add(t, 1e8 + 1e7 * standard_normal(gen));
    }
  }
  const std::size_t block = kRows + 2;
  std::vector<double> payload(flows * block);
  for (auto _ : state) {
    global_pool().parallel_for(0, flows, [&](std::size_t lo, std::size_t hi) {
      Vector z;
      for (std::size_t i = lo; i < hi; ++i) {
        double* out = payload.data() + i * block;
        const FlowSketch::Report report = bank[i].report_into(z);
        out[0] = report.mean;
        out[1] = static_cast<double>(report.count);
        for (std::size_t k = 0; k < kRows; ++k) out[2 + k] = z[k];
      }
    });
    benchmark::DoNotOptimize(payload.data());
  }
  set_global_threads(saved);
}
BENCHMARK(BM_SketchResponseEmit)->Args({256, 1})->Args({256, 2})->Args({256, 4});

void BM_ProjectionCoefficient(benchmark::State& state) {
  const auto kind = static_cast<ProjectionKind>(state.range(0));
  const ProjectionSource source(kind, 9, 3.0);
  std::int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(source.value(t++, 3));
  }
}
BENCHMARK(BM_ProjectionCoefficient)
    ->Arg(static_cast<int>(ProjectionKind::kGaussian))
    ->Arg(static_cast<int>(ProjectionKind::kTugOfWar))
    ->Arg(static_cast<int>(ProjectionKind::kSparse));

}  // namespace

SPCA_BENCHMARK_MAIN_WITH_OBSERVABILITY();
