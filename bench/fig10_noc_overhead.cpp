// Fig. 10 reproduction: computation overhead of the PCA step at the NOC, in
// the paper's flop model (m^2 n for Lakhina vs m^2 l for the sketch method)
// and as measured wall-clock time of the actual decompositions, across the
// sketch length l. The paper plots this in log scale: the sketch method's
// cost is flat in the window length and orders of magnitude below the
// baselines.
#include <cmath>
#include <iostream>

#include "bench/support/scenario.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "dist/distributed_detector.hpp"
#include "hier/hier_scenario.hpp"
#include "linalg/stats.hpp"
#include "linalg/svd.hpp"
#include "net/scenario.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "par/thread_pool.hpp"
#include "pca/pca_model.hpp"
#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"

namespace {

using namespace spca;

Matrix make_random_matrix(std::size_t n, std::size_t m, std::uint64_t seed) {
  Xoshiro256 gen(seed);
  Matrix y(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) y(i, j) = standard_normal(gen);
  }
  return y;
}

double time_pca_ms(const Matrix& data, int repeats) {
  Stopwatch watch;
  for (int i = 0; i < repeats; ++i) {
    const Svd f = svd(data, /*want_left=*/false);
    // Keep the optimizer honest.
    if (f.values[0] < 0.0) std::abort();
  }
  return watch.milliseconds() / repeats;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(
      "fig10_noc_overhead: NOC PCA computation cost, Lakhina (m^2 n) vs "
      "sketch (m^2 l), log-scale comparison");
  flags.define("flows", "81", "number of OD flows m");
  flags.define("l-list", "10,25,50,100,200,400,1000",
               "sketch lengths to sweep");
  flags.define("repeats", "3", "timing repetitions per point");
  flags.define("dist-window", "288",
               "sliding window of the distributed measurement run");
  flags.define("dist-intervals", "288",
               "evaluated intervals of the distributed measurement run");
  flags.define("dist-l", "80", "sketch length of the distributed run");
  flags.define("dist-monitors", "9", "local monitors of the distributed run");
  flags.define("model-backend", "warm",
               "NOC model backend of the distributed run: "
               "exact | warm | rsvd | fd");
  flags.define("hier-topology", "synth15",
               "topology of the hierarchical accounting run");
  flags.define("hier-monitors", "200",
               "monitors of the hierarchical accounting run (0 disables)");
  flags.define("hier-regions", "4",
               "regional NOCs of the hierarchical accounting run");
  flags.define("hier-intervals", "24",
               "intervals of the hierarchical accounting run");
  define_threads_flag(flags);
  define_observability_flags(flags);
  try {
    if (!flags.parse(argc, argv)) return 0;
    (void)configure_threads_from_flag(flags);
    const auto m = static_cast<std::size_t>(flags.integer("flows"));
    const auto l_values = bench::parse_size_list(flags.str("l-list"));
    const int repeats = static_cast<int>(flags.integer("repeats"));

    // Window lengths of the paper's two interval settings: two weeks.
    const std::size_t n_5min = 4032;
    const std::size_t n_1min = 20160;

    std::cout << "# Fig. 10 — NOC computation overhead (flop model and "
                 "measured SVD time), log scale\n"
              << "# m = " << m << ", Lakhina windows: n = " << n_5min
              << " (5-min), n = " << n_1min << " (1-min)\n";

    const double flops_lakhina_5 =
        static_cast<double>(m) * m * static_cast<double>(n_5min);
    const double flops_lakhina_1 =
        static_cast<double>(m) * m * static_cast<double>(n_1min);
    const double ms_lakhina_5 =
        time_pca_ms(make_random_matrix(n_5min, m, 1), repeats);
    // The 1-minute baseline at n = 20160 takes minutes; extrapolate its
    // measured time linearly in n (the SVD cost model is linear in rows) and
    // mark it as modeled.
    const double ms_lakhina_1 =
        ms_lakhina_5 * static_cast<double>(n_1min) / n_5min;

    TablePrinter table({"method", "l", "flops_m2x", "log10_flops",
                        "measured_ms"});
    table.row({"lakhina-5min", std::to_string(n_5min),
               std::to_string(flops_lakhina_5),
               std::to_string(std::log10(flops_lakhina_5)),
               std::to_string(ms_lakhina_5)});
    table.row({"lakhina-1min(model)", std::to_string(n_1min),
               std::to_string(flops_lakhina_1),
               std::to_string(std::log10(flops_lakhina_1)),
               std::to_string(ms_lakhina_1)});
    for (const std::size_t l : l_values) {
      const double flops = static_cast<double>(m) * m * static_cast<double>(l);
      const double ms = time_pca_ms(make_random_matrix(l, m, 100 + l), repeats);
      table.row({"sketch", std::to_string(l), std::to_string(flops),
                 std::to_string(std::log10(flops)), std::to_string(ms)});
    }
    table.print(std::cout);
    std::cout << "\n# Note: the sketch method's cost depends on l only — "
                 "identical for 5-minute and 1-minute intervals.\n";

    // Measured distributed run: the flop model above predicts the NOC cost;
    // this phase produces the observed counterpart — lazy-protocol sketch
    // pulls, wire bytes, and refit (SVD) latency quantiles — through the
    // spca.noc.* / spca.net.* instrumentation, exported via --metrics-out.
    bench::Scenario scenario;
    scenario.window = static_cast<std::size_t>(flags.integer("dist-window"));
    scenario.eval_intervals =
        static_cast<std::size_t>(flags.integer("dist-intervals"));
    scenario.anomalies = 8;
    scenario.seed = 99;
    const Topology topo = abilene_topology();
    const TraceSet trace = bench::make_trace(topo, scenario);

    SketchDetectorConfig config;
    config.window = scenario.window;
    config.sketch_rows = static_cast<std::size_t>(flags.integer("dist-l"));
    config.rank_policy = RankPolicy::fixed(6);
    config.seed = scenario.seed ^ 0xd15cULL;
    config.backend.kind = parse_model_backend(flags.str("model-backend"));
    DistributedDetector deployment(
        trace.num_flows(),
        static_cast<std::size_t>(flags.integer("dist-monitors")), config);
    std::size_t alarms = 0;
    for (std::size_t t = 0; t < trace.num_intervals(); ++t) {
      if (deployment.observe(static_cast<std::int64_t>(t), trace.row(t)).alarm)
        ++alarms;
    }

    // Report straight from the registry so this table and the --metrics-out
    // JSON are two views of the same numbers.
    MetricsRegistry& registry = MetricsRegistry::global();
    const Histogram& refit_seconds =
        registry.histogram("spca.noc.refit_seconds");
    std::cout << "\n# Measured distributed run: m = " << trace.num_flows()
              << ", l = " << config.sketch_rows << ", n = " << scenario.window
              << ", " << trace.num_intervals() << " intervals, "
              << deployment.num_monitors() << " monitors\n"
              << "noc sketch pulls: "
              << registry.counter("spca.noc.sketch_pulls").value()
              << " (lazy: "
              << registry.counter("spca.noc.lazy_pulls").value()
              << ", stale passes: "
              << registry.counter("spca.noc.stale_passes").value()
              << "); alarms: " << alarms << '\n'
              << "network bytes: "
              << registry.counter("spca.net.bytes_tx").value() << " over "
              << registry.counter("spca.net.messages").value()
              << " messages\n"
              << "noc refit (SVD) latency ms: p50="
              << refit_seconds.quantile(0.5) * 1e3
              << " p95=" << refit_seconds.quantile(0.95) * 1e3
              << " p99=" << refit_seconds.quantile(0.99) * 1e3
              << " (count=" << refit_seconds.count() << ")\n";

    // Hierarchical scale-out accounting: the same scenario through a tier
    // of regional NOCs, with the wire cost split by tree level. The
    // upstream message count at the root shrinks from k to R per phase
    // while the trajectory stays bit-identical to the flat run.
    const auto hier_monitors =
        static_cast<std::size_t>(flags.integer("hier-monitors"));
    if (hier_monitors > 0) {
      NetScenarioConfig nsc;
      nsc.topology = flags.str("hier-topology");
      nsc.monitors = hier_monitors;
      nsc.intervals =
          static_cast<std::size_t>(flags.integer("hier-intervals"));
      nsc.window = 8;
      nsc.sketch_rows = 6;
      nsc.seed = 11;
      nsc.anomalies = 2;
      const auto regions =
          static_cast<std::size_t>(flags.integer("hier-regions"));
      const NetScenario net_scenario = build_scenario(nsc);
      Stopwatch hier_watch;
      const ScenarioRun hier = run_hier_scenario_sim(net_scenario, regions);
      const double hier_ms = hier_watch.milliseconds();
      const HierWireAccounting levels = hier_wire_accounting(hier.stats);
      std::cout << "\n# Hierarchical run: " << hier_monitors << " monitors / "
                << regions << " regions (" << nsc.topology << ", "
                << nsc.intervals << " intervals), " << hier_ms << " ms\n"
                << "monitor->region: " << levels.monitor_to_region_bytes
                << " bytes over " << levels.monitor_to_region_messages
                << " messages\n"
                << "region->root:    " << levels.region_to_root_bytes
                << " bytes over " << levels.region_to_root_messages
                << " messages (" << hier_monitors << " -> " << regions
                << " upstream senders)\n"
                << "requests:        " << levels.request_bytes
                << " bytes over " << levels.request_messages
                << " messages\n"
                << "alarms: " << hier.alarm_intervals.size() << "\n";
    }

    export_observability(flags);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
