// Ablation (Sec. IV-C design choice): lazy vs eager sketch pulls in the
// distributed deployment. Lazy mode pulls monitor sketches only when the
// stale model raises a hand; eager refits every interval. Reports message
// and byte counts per protocol phase, model recomputations, and detection
// agreement between the two modes.
#include <iostream>

#include "bench/support/scenario.hpp"
#include "common/table.hpp"
#include "core/evaluation.hpp"
#include "dist/distributed_detector.hpp"

int main(int argc, char** argv) {
  using namespace spca;
  CliFlags flags(
      "abl_lazy_protocol: communication cost of lazy vs eager sketch "
      "pulls in the simulated deployment");
  bench::define_scenario_flags(flags);
  flags.define("sketch-rows", "64", "sketch length l");
  flags.define("monitors", "9", "number of local monitors (one per router)");
  try {
    if (!flags.parse(argc, argv)) return 0;
    bench::Scenario scenario = bench::scenario_from_flags(flags);
    // The distributed run costs ~2x the single-process one; trim defaults.
    if (scenario.window == 576) {
      scenario.window = 288;
      scenario.eval_intervals = 288;
    }
    const auto l = static_cast<std::size_t>(flags.integer("sketch-rows"));
    const auto monitors =
        static_cast<std::size_t>(flags.integer("monitors"));

    const Topology topo = abilene_topology();
    const TraceSet trace = bench::make_trace(topo, scenario);

    const auto run_mode = [&](bool lazy, bool noc_hosted) {
      SketchDetectorConfig config;
      config.window = scenario.window;
      config.epsilon = scenario.epsilon;
      config.sketch_rows = l;
      config.alpha = scenario.alpha;
      config.rank_policy = RankPolicy::fixed(6);
      config.seed = scenario.seed;
      config.lazy = lazy;
      auto detector = std::make_unique<DistributedDetector>(
          trace.num_flows(), monitors, config, noc_hosted);
      DetectorRun run = run_detector(*detector, trace);
      return std::pair(std::move(detector), std::move(run));
    };

    auto [lazy_det, lazy_run] = run_mode(true, false);
    auto [eager_det, eager_run] = run_mode(false, false);
    auto [hosted_det, hosted_run] = run_mode(true, true);

    std::cout << "# Ablation — lazy vs eager sketch pulls ("
              << monitors << " monitors, l = " << l << ")\n";
    TablePrinter table({"mode", "pulls", "sketch_msgs", "sketch_MiB",
                        "volume_MiB", "total_MiB", "alarms"});
    const auto row_for = [&](const char* name,
                             const DistributedDetector& det,
                             const DetectorRun& run) {
      const NetworkStats& stats = det.network_stats();
      const auto sketch_idx =
          static_cast<std::size_t>(MessageType::kSketchResponse);
      const auto volume_idx =
          static_cast<std::size_t>(MessageType::kVolumeReport);
      std::size_t alarms = 0;
      for (const auto& d : run.detections) alarms += d.alarm ? 1 : 0;
      table.row({name, std::to_string(det.noc().sketch_pulls()),
                 std::to_string(stats.messages_by_type[sketch_idx]),
                 std::to_string(static_cast<double>(
                                    stats.bytes_by_type[sketch_idx]) /
                                (1024.0 * 1024.0)),
                 std::to_string(static_cast<double>(
                                    stats.bytes_by_type[volume_idx]) /
                                (1024.0 * 1024.0)),
                 std::to_string(static_cast<double>(stats.bytes) /
                                (1024.0 * 1024.0)),
                 std::to_string(alarms)});
    };
    row_for("lazy", *lazy_det, lazy_run);
    row_for("eager", *eager_det, eager_run);
    row_for("noc-hosted", *hosted_det, hosted_run);
    table.print(std::cout);

    const ConfusionMatrix agreement =
        score_against_reference(lazy_run, eager_run);
    std::cout << "\nlazy-vs-eager verdict agreement: type1="
              << agreement.type1_error()
              << " type2=" << agreement.type2_error() << " over "
              << agreement.total() << " intervals\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
