// Fig. 9 reproduction: Type I and Type II errors vs the sketch length l at
// fixed r = 6, for both 5-minute and 1-minute measurement intervals.
//
// Expected shape (paper): both errors drop steeply with l and show "no
// remarkable decrease" beyond l ~ 200.
#include <iostream>

#include "bench/support/rank_sweep.hpp"
#include "bench/support/scenario.hpp"
#include "common/table.hpp"
#include "core/lakhina_detector.hpp"
#include "core/sketch_detector.hpp"

namespace {

using namespace spca;

void run_for_interval(const bench::Scenario& scenario, std::size_t rank,
                      const std::vector<std::size_t>& l_values,
                      TablePrinter& table) {
  const Topology topo = abilene_topology();
  const TraceSet trace = bench::make_trace(topo, scenario);
  const std::size_t m = trace.num_flows();

  LakhinaConfig exact_config;
  exact_config.window = scenario.window;
  exact_config.alpha = scenario.alpha;
  exact_config.rank_policy = RankPolicy::fixed(rank);
  exact_config.recompute_period = 4;
  LakhinaDetector exact(m, exact_config);
  const bench::RankSweepResult truth = bench::run_rank_sweep(
      exact, trace, rank, scenario.alpha, [](const LakhinaDetector& d) {
        return d.model() ? &*d.model() : nullptr;
      });

  for (const std::size_t l : l_values) {
    SketchDetectorConfig config;
    config.window = scenario.window;
    config.epsilon = scenario.epsilon;
    config.sketch_rows = l;
    config.alpha = scenario.alpha;
    config.rank_policy = RankPolicy::fixed(rank);
    config.seed = scenario.seed ^ 0x919ULL;
    SketchDetector sketch(m, config);
    const bench::RankSweepResult run = bench::run_rank_sweep(
        sketch, trace, rank, scenario.alpha, [](const SketchDetector& d) {
          return d.model().fitted() ? &d.model() : nullptr;
        });
    const std::size_t first_eval =
        std::max(truth.first_ready, run.first_ready);
    const bench::TypeErrors e = bench::type_errors(
        run.alarms[rank - 1], truth.alarms[rank - 1], first_eval);
    table.row({std::to_string(static_cast<int>(scenario.interval_seconds)),
               std::to_string(l), std::to_string(e.type1),
               std::to_string(e.type2), std::to_string(e.evaluated)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(
      "fig09_errors_vs_l: Type I/II errors vs sketch length l at r = 6, "
      "5-minute and 1-minute intervals");
  bench::define_scenario_flags(flags);
  flags.define("l-list", "10,25,50,100,200,400,600",
               "comma-separated sketch lengths to sweep");
  flags.define("rank", "6", "fixed normal-subspace size r");
  flags.define("skip-1min", "false",
               "skip the (slower) 1-minute interval series");
  try {
    if (!flags.parse(argc, argv)) return 0;
    const auto l_values = bench::parse_size_list(flags.str("l-list"));
    const auto rank = static_cast<std::size_t>(flags.integer("rank"));

    std::cout << "# Fig. 9 — Type I/II errors vs sketch length l at r = "
              << rank << "\n";
    TablePrinter table(
        {"interval_s", "l", "type1", "type2", "evaluated"});

    bench::Scenario five_min = bench::scenario_from_flags(flags);
    run_for_interval(five_min, rank, l_values, table);

    if (!flags.boolean("skip-1min")) {
      bench::Scenario one_min = five_min;
      one_min.interval_seconds = 60.0;
      if (!flags.boolean("paper-scale")) {
        one_min.window = 1440;
        one_min.eval_intervals = 1440;
      } else {
        one_min.window = static_cast<std::size_t>(14.0 * 86400.0 / 60.0);
        one_min.eval_intervals = one_min.window;
      }
      run_for_interval(one_min, rank, l_values, table);
    }
    table.print(std::cout);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
