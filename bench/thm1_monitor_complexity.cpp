// Theorem 1 / Lemma 1 accounting: local-monitor costs as the window n and
// the VH epsilon vary — bucket counts (O((1/eps) log n) once n is past the
// ~20/eps compaction threshold), summary bytes, per-update latency, and the
// variance approximation ratio V-hat / V (Lemma 1: within [1 - eps, 1]).
#include <iostream>

#include "bench/support/scenario.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "par/thread_pool.hpp"
#include "rand/distributions.hpp"
#include "rand/xoshiro256.hpp"
#include "sketch/flow_sketch.hpp"
#include "stream/sliding_window.hpp"

int main(int argc, char** argv) {
  using namespace spca;
  CliFlags flags(
      "thm1_monitor_complexity: VH bucket growth, memory, update latency, "
      "and the Lemma 1 variance approximation");
  flags.define("sketch-rows", "16", "sketch length l carried by the VH");
  flags.define("eps-list", "0.5,0.2,0.1,0.05", "VH epsilons to sweep");
  flags.define("n-list", "1024,4096,16384,65536", "window lengths to sweep");
  flags.define("threads-list", "1,2,4",
               "pool sizes for the monitor-scale interval-close sweep");
  flags.define("flows", "256",
               "flows per monitor in the interval-close sweep (w)");
  try {
    if (!flags.parse(argc, argv)) return 0;
    const auto l = static_cast<std::size_t>(flags.integer("sketch-rows"));
    const auto n_values = bench::parse_size_list(flags.str("n-list"));

    std::vector<double> eps_values;
    {
      const std::string text = flags.str("eps-list");
      std::size_t start = 0;
      while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::string token = text.substr(
            start,
            comma == std::string::npos ? std::string::npos : comma - start);
        if (!token.empty()) eps_values.push_back(std::stod(token));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    }

    std::cout << "# Theorem 1 — local monitor complexity accounting (l = "
              << l << ")\n";
    TablePrinter table({"eps", "n", "buckets", "buckets/log2(n)",
                        "summary_KiB", "exact_KiB", "update_us",
                        "vhat/v_min"});
    for (const double eps : eps_values) {
      for (const std::size_t n : n_values) {
        const ProjectionSource source(ProjectionKind::kTugOfWar, 7);
        FlowSketch sketch(n, eps, l, source);
        SlidingWindowStats exact(n);
        Xoshiro256 gen(n ^ 55);
        double worst_ratio = 1.0;
        Stopwatch watch;
        const std::size_t steps = 2 * n;
        for (std::size_t t = 0; t < steps; ++t) {
          const double x = 1e8 + 1e7 * standard_normal(gen);
          sketch.add(static_cast<std::int64_t>(t), x);
          exact.add(x);
          if (t >= n && t % 97 == 0) {
            const double v = exact.sum_squared_deviations();
            if (v > 0.0) {
              worst_ratio =
                  std::min(worst_ratio, sketch.variance_estimate() / v);
            }
          }
        }
        const double update_us = watch.microseconds() / steps;
        table.row(
            {std::to_string(eps), std::to_string(n),
             std::to_string(sketch.bucket_count()),
             std::to_string(static_cast<double>(sketch.bucket_count()) /
                            std::log2(static_cast<double>(n))),
             std::to_string(sketch.memory_bytes() / 1024.0),
             std::to_string(n * sizeof(double) / 1024.0),
             std::to_string(update_us), std::to_string(worst_ratio)});
      }
    }
    table.print(std::cout);
    std::cout << "\n# Lemma 1 requires vhat/v_min >= 1 - eps for every row "
                 "above.\n";

    // Monitor-scale interval close: w per-flow updates fanned out across
    // the pool, as LocalMonitor::end_interval does. The speedup column is
    // relative to the threads=1 row (bit-identical output by construction).
    const auto flows = static_cast<std::size_t>(flags.integer("flows"));
    const auto thread_values =
        bench::parse_size_list(flags.str("threads-list"));
    std::cout << "\n# Monitor interval close at w = " << flows
              << " flows (l = " << l << ", n = 4096)\n";
    TablePrinter par_table(
        {"threads", "interval_us", "updates_per_sec", "speedup"});
    const std::size_t saved_threads = global_threads();
    double serial_us = 0.0;
    for (const std::size_t threads : thread_values) {
      set_global_threads(threads);
      const ProjectionSource source(ProjectionKind::kTugOfWar, 7);
      std::vector<FlowSketch> bank;
      bank.reserve(flows);
      for (std::size_t i = 0; i < flows; ++i) {
        bank.emplace_back(4096, 0.1, l, source);
      }
      Xoshiro256 gen(91);
      Vector volumes(flows);
      for (std::size_t i = 0; i < flows; ++i) {
        volumes[i] = 1e8 + 1e7 * standard_normal(gen);
      }
      constexpr std::size_t kIntervals = 512;
      Stopwatch watch;
      for (std::size_t t = 0; t < kIntervals; ++t) {
        global_pool().parallel_for(
            0, flows, [&](std::size_t lo, std::size_t hi) {
              for (std::size_t i = lo; i < hi; ++i) {
                bank[i].add(static_cast<std::int64_t>(t), volumes[i]);
              }
            });
      }
      const double interval_us = watch.microseconds() / kIntervals;
      if (serial_us == 0.0) serial_us = interval_us;
      par_table.row({std::to_string(threads), std::to_string(interval_us),
                     std::to_string(1e6 * static_cast<double>(flows) /
                                    interval_us),
                     std::to_string(serial_us / interval_us)});
    }
    set_global_threads(saved_threads);
    par_table.print(std::cout);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
