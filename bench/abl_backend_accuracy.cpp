// Backend accuracy ablation: alarm-verdict agreement of the pluggable NOC
// model backends against the exact reference on the pinned fig. 5 scenario
// (coordinated low-profile botnet bump on four Abilene OD flows).
//
// For every backend the tool reports Type I/II error against the injected
// ground truth plus the verdict-divergence rate vs the exact backend, and
// appends one JSONL record per backend to --out (the CI artifact). Exit is
// nonzero when the warm backend's verdicts are not identical to exact, or
// when a truncated backend diverges on more ready intervals than
// --max-divergence (rsvd) / --max-divergence-fd (fd) allows — the
// tolerances documented in DESIGN.md.
#include <cstddef>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/support/scenario.hpp"
#include "common/table.hpp"
#include "core/evaluation.hpp"
#include "core/sketch_detector.hpp"
#include "pca/backend/model_backend.hpp"
#include "synth/anomaly_injector.hpp"

namespace {

using namespace spca;

struct BackendScore {
  std::string name;
  DetectorRun run;
  ConfusionMatrix confusion;
  double divergence = 0.0;
  std::size_t diverged = 0;
  std::size_t compared = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace spca;
  CliFlags flags(
      "abl_backend_accuracy: Type I/II and verdict divergence of the model "
      "backends vs the exact reference, pinned fig. 5 scenario");
  bench::define_scenario_flags(flags);
  flags.define("sketch-rows", "128", "sketch length l");
  flags.define("event-sigma", "3.0",
               "coordinated bump size in per-flow standard deviations");
  flags.define("max-divergence", "0.02",
               "allowed fraction of ready intervals where an rsvd verdict "
               "may differ from the exact backend");
  flags.define("max-divergence-fd", "0.10",
               "allowed verdict-divergence fraction for the fd backend, "
               "whose exponentially weighted window is a structurally "
               "different covariance estimator than the exact sliding "
               "window (borderline intervals flip either way)");
  flags.define("out", "BACKEND_accuracy.json",
               "JSONL artifact path (one record per backend, append mode)");
  try {
    if (!flags.parse(argc, argv)) return 0;
    const bench::Scenario scenario = bench::scenario_from_flags(flags);

    const Topology topo = abilene_topology();
    TrafficModelConfig config;
    config.num_intervals = scenario.total_intervals();
    config.interval_seconds = scenario.interval_seconds;
    config.seed = scenario.seed;
    TraceSet trace = generate_traffic(topo, config);

    const std::vector<FlowId> flows = {
        topo.flow_id("ATLA", "CHIC"), topo.flow_id("CHIC", "KANS"),
        topo.flow_id("CHIC", "SALT"), topo.flow_id("SEAT", "SALT")};
    const std::int64_t event_start = static_cast<std::int64_t>(
        scenario.window + scenario.eval_intervals / 2);
    AnomalyInjector injector(topo, scenario.seed);
    injector.inject_botnet(trace, event_start, 4, flows,
                           flags.real("event-sigma"));

    std::vector<bool> truth(static_cast<std::size_t>(config.num_intervals));
    for (std::size_t t = 0; t < truth.size(); ++t) {
      truth[t] = trace.is_anomalous(static_cast<std::int64_t>(t));
    }

    const double max_divergence = flags.real("max-divergence");
    const double max_divergence_fd = flags.real("max-divergence-fd");
    const std::vector<ModelBackendKind> kinds = {
        ModelBackendKind::kExact, ModelBackendKind::kWarm,
        ModelBackendKind::kRsvd, ModelBackendKind::kFd};

    std::vector<BackendScore> scores;
    for (const ModelBackendKind kind : kinds) {
      SketchDetectorConfig detector_config;
      detector_config.window = scenario.window;
      detector_config.epsilon = scenario.epsilon;
      detector_config.sketch_rows =
          static_cast<std::size_t>(flags.integer("sketch-rows"));
      detector_config.alpha = scenario.alpha;
      detector_config.rank_policy = RankPolicy::fixed(6);
      detector_config.seed = scenario.seed ^ 0xf1f5ULL;
      detector_config.backend.kind = kind;
      SketchDetector detector(trace.num_flows(), detector_config);
      BackendScore score;
      score.name = to_string(kind);
      score.run = run_detector(detector, trace);
      score.confusion =
          score_against_labels(score.run, truth, scenario.window);
      scores.push_back(std::move(score));
    }

    const DetectorRun& exact = scores.front().run;
    for (BackendScore& score : scores) {
      for (std::size_t t = 0; t < exact.detections.size(); ++t) {
        if (!exact.detections[t].ready || !score.run.detections[t].ready) {
          continue;
        }
        ++score.compared;
        if (score.run.detections[t].alarm != exact.detections[t].alarm) {
          ++score.diverged;
        }
      }
      score.divergence =
          score.compared == 0
              ? 0.0
              : static_cast<double>(score.diverged) /
                    static_cast<double>(score.compared);
    }

    std::cout << "# Backend accuracy vs exact — pinned fig. 5 scenario "
              << "(seed " << scenario.seed << ", event at " << event_start
              << ")\n";
    TablePrinter table({"backend", "type I", "type II", "divergence",
                        "diverged", "compared"});
    for (const BackendScore& score : scores) {
      table.row({score.name, std::to_string(score.confusion.type1_error()),
                 std::to_string(score.confusion.type2_error()),
                 std::to_string(score.divergence),
                 std::to_string(score.diverged),
                 std::to_string(score.compared)});
    }
    table.print(std::cout);

    const std::string out_path = flags.str("out");
    if (!out_path.empty()) {
      std::ofstream out(out_path, std::ios::app);
      if (!out) throw InputError("cannot open '" + out_path + "'");
      for (const BackendScore& score : scores) {
        out << "{\"backend\": \"" << score.name << "\", \"type1\": "
            << score.confusion.type1_error() << ", \"type2\": "
            << score.confusion.type2_error() << ", \"divergence\": "
            << score.divergence << ", \"diverged\": " << score.diverged
            << ", \"compared\": " << score.compared << "}\n";
      }
      std::cout << "\nartifact appended to " << out_path << "\n";
    }

    int violations = 0;
    for (const BackendScore& score : scores) {
      if (score.name == std::string("warm") && score.diverged != 0) {
        std::cerr << "FAIL: warm diverged from exact on " << score.diverged
                  << " interval(s); warm must be verdict-identical\n";
        ++violations;
      }
      const double allowed = score.name == std::string("rsvd")
                                 ? max_divergence
                                 : score.name == std::string("fd")
                                       ? max_divergence_fd
                                       : -1.0;
      if (allowed >= 0.0 && score.divergence > allowed) {
        std::cerr << "FAIL: " << score.name << " divergence "
                  << score.divergence << " exceeds the documented tolerance "
                  << allowed << "\n";
        ++violations;
      }
    }
    if (violations > 0) return 1;
    std::cout << "OK: all backends within tolerance (warm identical, rsvd <= "
              << max_divergence << ", fd <= " << max_divergence_fd << ")\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
