// Fig. 8 reproduction: the Fig. 7 error surface with 1-minute measurement
// intervals. The paper's point is that the shape persists while the exact
// method's window length (and thus its cost) grows 5x; the sketch method's
// cost is interval-length independent.
#include <iostream>

#include "bench/support/error_surface.hpp"

int main(int argc, char** argv) {
  using namespace spca;
  CliFlags flags(
      "fig08_error_surface_1min: Type I/II error surface over (r, l), "
      "1-minute intervals");
  bench::define_scenario_flags(flags);
  flags.define("l-list", "10,25,50,100,200,400",
               "comma-separated sketch lengths to sweep");
  flags.define("max-rank", "10", "largest normal-subspace size r");
  try {
    if (!flags.parse(argc, argv)) return 0;
    bench::Scenario scenario = bench::scenario_from_flags(flags);
    // 1-minute intervals; keep the same wall-clock window span as the
    // default 5-minute scenario unless the user overrode the flags.
    if (flags.real("interval-seconds") == 300.0) {
      scenario.interval_seconds = 60.0;
      if (!flags.boolean("paper-scale") &&
          flags.integer("window") == 576) {
        // 576 x 5 min = 2 days -> 2880 x 1 min; keep the default bench fast
        // with a one-day window instead.
        scenario.window = 1440;
        scenario.eval_intervals = 1440;
      }
    } else {
      scenario.interval_seconds = flags.real("interval-seconds");
    }
    std::cout << "# Fig. 8 — sketch vs exact PCA Type I/II errors, "
                 "1-minute intervals\n";
    bench::run_error_surface(scenario,
                             bench::parse_size_list(flags.str("l-list")),
                             static_cast<std::size_t>(flags.integer("max-rank")));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
