// Ablation (Sec. V-B design choice): the four random-projection schemes —
// Gaussian (Vempala), tug-of-war (Alon et al.), Achlioptas sparse (s = 3),
// and Li very sparse (s = sqrt(n)) — compared on (a) covariance
// approximation error |Z^T Z - Y^T Y|_F / |Y^T Y|_F, (b) detection
// agreement with the exact detector, and (c) projection evaluation cost
// (sparse schemes skip most coefficients).
#include <iostream>

#include "bench/support/rank_sweep.hpp"
#include "bench/support/scenario.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "core/lakhina_detector.hpp"
#include "core/sketch_detector.hpp"
#include "linalg/stats.hpp"
#include "sketch/random_projection.hpp"

int main(int argc, char** argv) {
  using namespace spca;
  CliFlags flags(
      "abl_projection_schemes: gaussian vs tug-of-war vs sparse vs "
      "very-sparse projections");
  bench::define_scenario_flags(flags);
  flags.define("sketch-rows", "128", "sketch length l");
  flags.define("rank", "6", "normal subspace size r");
  try {
    if (!flags.parse(argc, argv)) return 0;
    bench::Scenario scenario = bench::scenario_from_flags(flags);
    const auto l = static_cast<std::size_t>(flags.integer("sketch-rows"));
    const auto rank = static_cast<std::size_t>(flags.integer("rank"));

    const Topology topo = abilene_topology();
    const TraceSet trace = bench::make_trace(topo, scenario);
    const std::size_t m = trace.num_flows();

    // Exact ground truth (one pass).
    LakhinaConfig exact_config;
    exact_config.window = scenario.window;
    exact_config.alpha = scenario.alpha;
    exact_config.rank_policy = RankPolicy::fixed(rank);
    exact_config.recompute_period = 4;
    LakhinaDetector exact(m, exact_config);
    const bench::RankSweepResult truth = bench::run_rank_sweep(
        exact, trace, rank, scenario.alpha, [](const LakhinaDetector& d) {
          return d.model() ? &*d.model() : nullptr;
        });

    // Covariance-approximation reference on the final window.
    Matrix window(scenario.window, m);
    for (std::size_t i = 0; i < scenario.window; ++i) {
      window.set_row(i, trace.row(trace.num_intervals() - scenario.window + i));
    }
    const Matrix y = center_columns(window);
    const Matrix gy = gram(y);
    const double gy_norm = frobenius_norm(gy);
    const std::int64_t t_first =
        static_cast<std::int64_t>(trace.num_intervals() - scenario.window);

    std::cout << "# Ablation — projection schemes at l = " << l << ", r = "
              << rank << "\n";
    TablePrinter table({"scheme", "cov_rel_err", "type1", "type2",
                        "project_ms"});
    for (const auto kind :
         {ProjectionKind::kGaussian, ProjectionKind::kTugOfWar,
          ProjectionKind::kSparse, ProjectionKind::kVerySparse}) {
      const ProjectionSource source =
          kind == ProjectionKind::kVerySparse
              ? ProjectionSource::very_sparse(scenario.seed, scenario.window)
              : ProjectionSource(kind, scenario.seed, 3.0);

      Stopwatch watch;
      const Matrix z = project_columns(y, source, t_first, l);
      const double project_ms = watch.milliseconds();
      const double cov_err = frobenius_norm(gram(z) - gy) / gy_norm;

      SketchDetectorConfig config;
      config.window = scenario.window;
      config.epsilon = scenario.epsilon;
      config.sketch_rows = l;
      config.alpha = scenario.alpha;
      config.rank_policy = RankPolicy::fixed(rank);
      config.projection = kind;
      config.seed = scenario.seed;
      SketchDetector sketch(m, config);
      const bench::RankSweepResult run = bench::run_rank_sweep(
          sketch, trace, rank, scenario.alpha, [](const SketchDetector& d) {
            return d.model().fitted() ? &d.model() : nullptr;
          });
      const bench::TypeErrors e = bench::type_errors(
          run.alarms[rank - 1], truth.alarms[rank - 1],
          std::max(truth.first_ready, run.first_ready));

      table.row({std::string(to_string(kind)), std::to_string(cov_err),
                 std::to_string(e.type1), std::to_string(e.type2),
                 std::to_string(project_ms)});
    }
    table.print(std::cout);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
