// Feature-entropy detection + address identification: the paper's Sec.
// III-B note that the measurement x_ij can be "the entropy of IP
// addresses" rather than the traffic volume (after Lakhina'05, ref [4]),
// combined with the sketch-subspace identification capability of Li et
// al. (ref [7]) via Count-Min heavy hitters.
//
// Scenario: an address scan — one host sweeping a remote router's address
// pool with tiny packets. In bytes it is a rounding error; in the
// destination-address entropy of its OD flow it is a step change. This
// example builds BOTH measurement matrices from the same packet stream,
// runs the same sketch detector on each online, and when the entropy view
// fires it (a) names the culprit flow from the residual contributions and
// (b) names the scanning host from the flow's per-interval Count-Min
// heavy-hitter sketch of source addresses.
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/spca.hpp"
#include "sketch/count_min.hpp"
#include "synth/address_model.hpp"
#include "synth/packet_synthesizer.hpp"
#include "traffic/entropy.hpp"
#include "traffic/volume_counter.hpp"

int main(int argc, char** argv) {
  using namespace spca;
  CliFlags flags(
      "entropy_scan_detection: volume-PCA vs entropy-PCA on address scans, "
      "with Count-Min culprit identification");
  flags.define("window", "288", "sliding window n (one day of 5-min bins)");
  flags.define("eval-intervals", "96", "intervals after warm-up");
  flags.define("sketch-rows", "64", "sketch length l");
  flags.define("scan-packets", "600", "packets per scan interval");
  flags.define("seed", "11", "scenario seed");
  try {
    if (!flags.parse(argc, argv)) return 0;
    const auto window = static_cast<std::size_t>(flags.integer("window"));
    const auto seed = static_cast<std::uint64_t>(flags.integer("seed"));
    const auto scan_packets =
        static_cast<std::size_t>(flags.integer("scan-packets"));

    const Topology topo = abilene_topology();
    TrafficModelConfig traffic;
    traffic.num_intervals =
        window + static_cast<std::size_t>(flags.integer("eval-intervals"));
    traffic.seed = seed;
    // Small volumes keep the per-packet pipeline fast.
    traffic.bytes_per_second = 2.0e5;
    const TraceSet volume_trace = generate_traffic(topo, traffic);
    const std::size_t m = volume_trace.num_flows();
    const std::uint32_t routers = topo.num_routers();

    // Scan episodes: three flows take turns being scanned.
    struct ScanEpisode {
      std::int64_t start;
      std::int64_t end;
      FlowId flow;
    };
    const std::vector<ScanEpisode> scans = {
        {static_cast<std::int64_t>(window) + 20,
         static_cast<std::int64_t>(window) + 22,
         topo.flow_id("SEAT", "NEWY")},
        {static_cast<std::int64_t>(window) + 50,
         static_cast<std::int64_t>(window) + 52,
         topo.flow_id("LOSA", "ATLA")},
        {static_cast<std::int64_t>(window) + 80,
         static_cast<std::int64_t>(window) + 82,
         topo.flow_id("KANS", "WASH")},
    };
    const auto in_scan = [&](std::int64_t t) {
      for (const auto& s : scans) {
        if (t >= s.start && t <= s.end) return true;
      }
      return false;
    };

    // Two detectors over the two measurement views, plus the per-flow
    // source-address heavy-hitter sketches the monitor keeps per interval.
    SketchDetectorConfig config;
    config.window = window;
    config.sketch_rows =
        static_cast<std::size_t>(flags.integer("sketch-rows"));
    config.rank_policy = RankPolicy::fixed(6);
    config.alpha = 0.001;
    config.seed = seed ^ 0xe27ULL;
    SketchDetector volume_detector(m, config);
    SketchDetector entropy_detector(m, config);

    const AddressModel addresses;
    VolumeCounter volume_counter(static_cast<std::uint32_t>(m));
    EntropyAggregator entropy_agg(
        static_cast<std::uint32_t>(m),
        EntropyAggregator::Feature::kDestinationAddress);
    std::vector<HeavyHitterTracker> src_hitters(
        m, HeavyHitterTracker(16, 0.01, 0.01, seed ^ 0xcafeULL));

    std::size_t volume_hits = 0, entropy_hits = 0, scan_intervals = 0;
    std::size_t volume_fp = 0, entropy_fp = 0, clean = 0;
    std::size_t scanners_identified = 0;
    double scan_bytes_total = 0.0;

    std::cout << "streaming " << volume_trace.num_intervals()
              << " packet-built intervals...\n";
    for (std::size_t t = 0; t < volume_trace.num_intervals(); ++t) {
      auto packets = synthesize_interval(volume_trace, t, routers,
                                         PacketSizeModel{}, seed + t);
      assign_addresses(packets, addresses, seed * 31 + t);
      std::uint32_t true_scanner = 0;
      for (const auto& s : scans) {
        if (static_cast<std::int64_t>(t) >= s.start &&
            static_cast<std::int64_t>(t) <= s.end) {
          const auto burst = synthesize_scan_packets(
              s.flow, routers, static_cast<std::int64_t>(t), scan_packets,
              64, addresses, seed + 7 * t);
          true_scanner = burst.front().src_addr;
          for (const auto& p : burst) {
            scan_bytes_total += static_cast<double>(p.size_bytes);
            packets.push_back(p);
          }
        }
      }
      for (auto& tracker : src_hitters) tracker.reset();
      for (const auto& p : packets) {
        volume_counter.record_packet(p, routers);
        entropy_agg.record(p, routers);
        // Weight by packet count, not bytes: a scanner sends many tiny
        // packets, so packet count is the dominant statistic.
        src_hitters[od_flow_id(p.origin, p.destination, routers)].add(
            p.src_addr, 1.0);
      }
      const Vector volumes = volume_counter.end_interval();
      const Vector entropies = entropy_agg.end_interval();

      const Detection dv =
          volume_detector.observe(static_cast<std::int64_t>(t), volumes);
      const Detection de =
          entropy_detector.observe(static_cast<std::int64_t>(t), entropies);
      if (!de.ready) continue;

      const bool scan_now = in_scan(static_cast<std::int64_t>(t));
      if (scan_now) {
        ++scan_intervals;
        if (dv.alarm) ++volume_hits;
        if (de.alarm) {
          ++entropy_hits;
          // Diagnosis: culprit flow from the residual, scanner address
          // from that flow's heavy-hitter sketch. Scan packets come from
          // one host, so it dominates the flow's per-packet source weight.
          const auto culprits = top_contributors(
              entropy_detector.model(), entropies, de.normal_rank, 0.5);
          const FlowId flow = static_cast<FlowId>(culprits[0].flow);
          const auto hitters = src_hitters[flow].top(1);
          if (!hitters.empty() && hitters[0].key == true_scanner) {
            ++scanners_identified;
          }
        }
      } else {
        ++clean;
        if (dv.alarm) ++volume_fp;
        if (de.alarm) ++entropy_fp;
      }
    }

    const double mean_interval_bytes = traffic.bytes_per_second * 300.0;
    std::cout << "scan footprint: "
              << scan_bytes_total /
                     (mean_interval_bytes *
                      static_cast<double>(scan_intervals)) *
                     100.0
              << "% of network volume during scan intervals\n\n";
    TablePrinter table({"view", "scan_flagged", "false_alarm_rate"});
    table.row({"volume-PCA",
               std::to_string(volume_hits) + "/" +
                   std::to_string(scan_intervals),
               std::to_string(static_cast<double>(volume_fp) /
                              static_cast<double>(clean))});
    table.row({"entropy-PCA",
               std::to_string(entropy_hits) + "/" +
                   std::to_string(scan_intervals),
               std::to_string(static_cast<double>(entropy_fp) /
                              static_cast<double>(clean))});
    table.print(std::cout);
    std::cout << "\nscanning host identified by Count-Min heavy hitter in "
              << scanners_identified << "/" << entropy_hits
              << " flagged scan intervals\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
