// Network-wide monitoring scenario: a month-style campaign on the Abilene
// backbone comparing the sketch-based streaming detector against the exact
// Lakhina baseline on a trace with a mixture of injected anomalies (DDoS,
// coordinated botnets, flash crowds, outages, scans).
//
// Prints per-kind detection rates for both detectors and their mutual
// agreement — the Sec. VI evaluation protocol as a runnable program.
#include <iostream>
#include <map>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/spca.hpp"

int main(int argc, char** argv) {
  using namespace spca;
  CliFlags flags(
      "abilene_monitoring: sketch vs exact PCA detection over a labelled "
      "anomaly campaign");
  flags.define("window", "576", "sliding window n (intervals)");
  flags.define("eval-intervals", "864", "intervals after warm-up");
  flags.define("sketch-rows", "150", "sketch length l");
  flags.define("rank", "6", "normal subspace size r");
  flags.define("anomalies", "24", "episodes to inject");
  flags.define("seed", "1234", "scenario seed");
  try {
    if (!flags.parse(argc, argv)) return 0;
    const auto window = static_cast<std::size_t>(flags.integer("window"));
    const auto rank = static_cast<std::size_t>(flags.integer("rank"));

    const Topology topo = abilene_topology();
    TrafficModelConfig traffic;
    traffic.num_intervals =
        window + static_cast<std::size_t>(flags.integer("eval-intervals"));
    traffic.seed = static_cast<std::uint64_t>(flags.integer("seed"));
    TraceSet trace = generate_traffic(topo, traffic);
    AnomalyInjector injector(topo, traffic.seed ^ 0xabcULL);
    (void)injector.inject_mixture(
        trace, static_cast<std::size_t>(flags.integer("anomalies")),
        static_cast<std::int64_t>(window),
        static_cast<std::int64_t>(trace.num_intervals()));

    SketchDetectorConfig sketch_config;
    sketch_config.window = window;
    sketch_config.sketch_rows =
        static_cast<std::size_t>(flags.integer("sketch-rows"));
    sketch_config.rank_policy = RankPolicy::fixed(rank);
    sketch_config.seed = traffic.seed ^ 0x5ca1eULL;
    SketchDetector sketch(trace.num_flows(), sketch_config);

    LakhinaConfig exact_config;
    exact_config.window = window;
    exact_config.rank_policy = RankPolicy::fixed(rank);
    exact_config.recompute_period = 4;
    LakhinaDetector exact(trace.num_flows(), exact_config);

    std::cout << "running both detectors over " << trace.num_intervals()
              << " intervals, " << trace.events().size()
              << " injected episodes...\n";
    const DetectorRun sketch_run = run_detector(sketch, trace);
    const DetectorRun exact_run = run_detector(exact, trace);

    // Per-kind detection: an episode counts as caught if any of its
    // intervals raised an alarm.
    std::map<std::string, std::pair<int, int>> sketch_by_kind, exact_by_kind;
    for (const auto& event : trace.events()) {
      const auto caught = [&](const DetectorRun& run) {
        for (std::int64_t t = event.start; t <= event.end; ++t) {
          if (run.detections[static_cast<std::size_t>(t)].alarm) return true;
        }
        return false;
      };
      sketch_by_kind[event.kind].second++;
      exact_by_kind[event.kind].second++;
      if (caught(sketch_run)) sketch_by_kind[event.kind].first++;
      if (caught(exact_run)) exact_by_kind[event.kind].first++;
    }

    TablePrinter table({"anomaly_kind", "episodes", "sketch_caught",
                        "exact_caught"});
    for (const auto& [kind, counts] : sketch_by_kind) {
      table.row({kind, std::to_string(counts.second),
                 std::to_string(counts.first),
                 std::to_string(exact_by_kind[kind].first)});
    }
    table.print(std::cout);

    const ConfusionMatrix vs_truth_sketch =
        score_against_labels(sketch_run, trace.labels(), window);
    const ConfusionMatrix vs_exact =
        score_against_reference(sketch_run, exact_run);
    std::cout << "\nsketch vs injected truth:  type I = "
              << vs_truth_sketch.type1_error()
              << ", type II = " << vs_truth_sketch.type2_error()
              << "\nsketch vs exact baseline:  type I = "
              << vs_exact.type1_error()
              << ", type II = " << vs_exact.type2_error()
              << "\nsketch model recomputations: "
              << sketch.model_computations() << " (lazy pulls)\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
