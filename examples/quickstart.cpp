// Quickstart: the smallest end-to-end use of the library.
//
//   1. Generate synthetic Abilene OD-flow traffic.
//   2. Inject one coordinated low-profile anomaly.
//   3. Stream it through the sketch-based streaming PCA detector.
//   4. Print the alarms.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "core/spca.hpp"

int main() {
  using namespace spca;

  // The 9-router Internet2/Abilene backbone of the paper's evaluation:
  // 81 origin-destination flows.
  const Topology topo = abilene_topology();

  // One day of 5-minute measurement intervals (288) for warm-up plus one
  // day to monitor.
  TrafficModelConfig traffic;
  traffic.num_intervals = 576;
  traffic.interval_seconds = 300.0;
  traffic.seed = 42;
  TraceSet trace = generate_traffic(topo, traffic);

  // A botnet-style coordinated anomaly: six flows rise by three standard
  // deviations each, simultaneously, for three intervals.
  AnomalyInjector injector(topo, /*seed=*/7);
  injector.inject_botnet(trace, /*start=*/500, /*duration=*/3,
                         {topo.flow_id("ATLA", "CHIC"),
                          topo.flow_id("CHIC", "KANS"),
                          topo.flow_id("SEAT", "SALT"),
                          topo.flow_id("LOSA", "HOUS"),
                          topo.flow_id("NEWY", "WASH"),
                          topo.flow_id("KANS", "CHIC")},
                         /*fraction_of_std=*/3.0);

  // The paper's detector: sliding window n = 288, sketch length l = 100,
  // normal subspace r = 6, Q-statistic alpha = 0.01, lazy sketch pulls.
  SketchDetectorConfig config;
  config.window = 288;
  config.sketch_rows = 100;
  config.rank_policy = RankPolicy::fixed(6);
  config.alpha = 0.01;
  SketchDetector detector(trace.num_flows(), config);

  std::cout << "streaming " << trace.num_intervals() << " intervals of "
            << trace.num_flows() << " OD flows...\n";
  for (std::size_t t = 0; t < trace.num_intervals(); ++t) {
    const Detection det =
        detector.observe(static_cast<std::int64_t>(t), trace.row(t));
    if (det.alarm) {
      std::cout << "  ALARM at interval " << t << ": distance "
                << det.distance << " > threshold " << det.threshold
                << (trace.is_anomalous(static_cast<std::int64_t>(t))
                        ? "  (injected anomaly)"
                        : "  (false alarm)")
                << '\n';
    }
  }
  std::cout << "done. model recomputations (sketch pulls): "
            << detector.model_computations() << " of "
            << trace.num_intervals() << " intervals\n";
  return 0;
}
