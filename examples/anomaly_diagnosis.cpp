// Anomaly diagnosis walkthrough: detection is only half the operator's job —
// after an alarm, which flows carry the anomalous traffic, and which links
// does it cross? This example injects a coordinated botnet on known flows,
// waits for the sketch detector to fire, and then
//   1. ranks flows by their share of the residual (anomaly-subspace) energy,
//   2. checks the ranking recovers the injected flows,
//   3. maps the culprit flows onto backbone links via shortest-path routing.
#include <algorithm>
#include <map>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/spca.hpp"
#include "traffic/routing.hpp"

int main(int argc, char** argv) {
  using namespace spca;
  CliFlags flags("anomaly_diagnosis: identify flows and links behind an alarm");
  flags.define("window", "288", "sliding window n");
  flags.define("sketch-rows", "128", "sketch length l");
  flags.define("seed", "77", "scenario seed");
  try {
    if (!flags.parse(argc, argv)) return 0;
    const auto window = static_cast<std::size_t>(flags.integer("window"));
    const auto seed = static_cast<std::uint64_t>(flags.integer("seed"));

    const Topology topo = abilene_topology();
    TrafficModelConfig traffic;
    traffic.num_intervals = window + 96;
    traffic.seed = seed;
    TraceSet trace = generate_traffic(topo, traffic);

    const std::vector<FlowId> culprits = {
        topo.flow_id("SEAT", "NEWY"), topo.flow_id("LOSA", "NEWY"),
        topo.flow_id("SALT", "WASH"), topo.flow_id("HOUS", "NEWY"),
        topo.flow_id("KANS", "WASH")};
    const std::int64_t event_start =
        static_cast<std::int64_t>(window) + 48;
    AnomalyInjector injector(topo, seed);
    injector.inject_botnet(trace, event_start, 3, culprits, 3.5);

    SketchDetectorConfig config;
    config.window = window;
    config.sketch_rows =
        static_cast<std::size_t>(flags.integer("sketch-rows"));
    config.rank_policy = RankPolicy::fixed(6);
    config.seed = seed ^ 0xd1aULL;
    SketchDetector detector(trace.num_flows(), config);

    Detection alarm_det;
    std::int64_t alarm_t = -1;
    Vector alarm_row;
    for (std::size_t t = 0; t < trace.num_intervals(); ++t) {
      const Detection det =
          detector.observe(static_cast<std::int64_t>(t), trace.row(t));
      if (det.alarm && static_cast<std::int64_t>(t) >= event_start &&
          alarm_t < 0) {
        alarm_det = det;
        alarm_t = static_cast<std::int64_t>(t);
        alarm_row = trace.row(t);
      }
    }
    if (alarm_t < 0) {
      std::cout << "no alarm raised during the injected episode — rerun "
                   "with a different seed\n";
      return 1;
    }
    std::cout << "alarm at interval " << alarm_t << ": distance "
              << alarm_det.distance << " > threshold " << alarm_det.threshold
              << "\n\ntop contributors (80% of residual energy):\n";

    const auto top = top_contributors(detector.model(), alarm_row,
                                      alarm_det.normal_rank, 0.8);
    TablePrinter table({"flow", "residual_bytes", "share", "injected"});
    for (const auto& c : top) {
      const bool injected =
          std::find(culprits.begin(), culprits.end(),
                    static_cast<FlowId>(c.flow)) != culprits.end();
      table.row({topo.flow_name(static_cast<FlowId>(c.flow)),
                 std::to_string(c.residual), std::to_string(c.share),
                 injected ? "yes" : "-"});
    }
    table.print(std::cout);

    std::size_t recovered = 0;
    for (const auto& c : top) {
      if (std::find(culprits.begin(), culprits.end(),
                    static_cast<FlowId>(c.flow)) != culprits.end()) {
        ++recovered;
      }
    }
    std::cout << "\ninjected flows recovered in the top set: " << recovered
              << " / " << culprits.size() << '\n';

    // Map the identified flows onto the backbone links they traverse.
    const Routing routing(topo);
    std::map<std::size_t, double> link_energy;
    for (const auto& c : top) {
      const OdPair od =
          od_pair_of(static_cast<FlowId>(c.flow), topo.num_routers());
      for (const std::size_t link : routing.path(od.origin, od.destination)) {
        link_energy[link] += c.share;
      }
    }
    std::cout << "\nlinks crossed by the identified flows (summed share):\n";
    TablePrinter links_table({"link", "summed_share"});
    for (const auto& [link, share] : link_energy) {
      const Link& l = topo.links()[link];
      links_table.row({topo.router_name(l.a) + "--" + topo.router_name(l.b),
                       std::to_string(share)});
    }
    links_table.print(std::cout);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
