// Distributed deployment walkthrough: nine local monitors (one per Abilene
// router) and a NOC exchange serialized protocol messages over a simulated
// network, driven by an actual synthesized packet stream for the first few
// intervals (demonstrating the full Fig. 4 pipeline: packet -> aggregation
// -> volume counter -> variance histogram/sketch -> NOC) and by
// interval-level replay afterwards for speed.
//
// Prints the per-phase communication budget and shows the lazy protocol
// pulling sketches only when suspicion arises.
//
// --transport=tcp swaps the simulated network for a loopback-TCP bus: the
// same deployment, but every message crosses a real kernel socket with wire
// framing. The trajectory and byte counts are identical by construction.
// For a true multi-process run, see apps/spca_nocd and apps/spca_monitord.
#include <iostream>

#include <memory>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "core/spca.hpp"
#include "dist/distributed_detector.hpp"
#include "net/tcp_bus.hpp"
#include "obs/report.hpp"
#include "par/thread_pool.hpp"
#include "synth/packet_synthesizer.hpp"

int main(int argc, char** argv) {
  using namespace spca;
  CliFlags flags(
      "distributed_deployment: monitors + NOC over a simulated network "
      "with byte-level accounting");
  flags.define("window", "288", "sliding window n");
  flags.define("eval-intervals", "288", "intervals after warm-up");
  flags.define("sketch-rows", "80", "sketch length l");
  flags.define("monitors", "9", "local monitors (one per router)");
  flags.define("packet-intervals", "3",
               "intervals driven by an explicit packet stream");
  flags.define("seed", "99", "scenario seed");
  flags.define("transport", "sim",
               "message carrier: sim (in-process queues) or tcp (loopback "
               "sockets with real framing)");
  flags.define("model-backend", "warm",
               "NOC model backend: exact | warm | rsvd | fd");
  define_threads_flag(flags);
  define_observability_flags(flags);
  try {
    if (!flags.parse(argc, argv)) return 0;
    (void)configure_threads_from_flag(flags);
    const auto window = static_cast<std::size_t>(flags.integer("window"));
    const auto seed = static_cast<std::uint64_t>(flags.integer("seed"));

    const Topology topo = abilene_topology();
    TrafficModelConfig traffic;
    traffic.num_intervals =
        window + static_cast<std::size_t>(flags.integer("eval-intervals"));
    traffic.seed = seed;
    // Modest volumes so the packet-driven intervals stay cheap.
    traffic.bytes_per_second = 4.0e5;
    TraceSet trace = generate_traffic(topo, traffic);
    AnomalyInjector injector(topo, seed);
    (void)injector.inject_mixture(
        trace, 8, static_cast<std::int64_t>(window),
        static_cast<std::int64_t>(trace.num_intervals()));

    SketchDetectorConfig config;
    config.window = window;
    config.sketch_rows =
        static_cast<std::size_t>(flags.integer("sketch-rows"));
    config.rank_policy = RankPolicy::fixed(6);
    config.seed = seed ^ 0xd15cULL;
    config.backend.kind = parse_model_backend(flags.str("model-backend"));
    const auto num_monitors =
        static_cast<std::size_t>(flags.integer("monitors"));
    const std::string transport_kind = flags.str("transport");
    std::unique_ptr<TcpBus> bus;
    if (transport_kind == "tcp") {
      std::vector<NodeId> nodes{kNocId};
      for (std::size_t k = 1; k <= num_monitors; ++k) {
        nodes.push_back(static_cast<NodeId>(k));
      }
      bus = std::make_unique<TcpBus>(nodes);
      std::cout << "transport: loopback TCP (every message crosses a real "
                   "kernel socket)\n";
    } else if (transport_kind != "sim") {
      throw InputError("--transport must be sim or tcp");
    }
    DistributedDetector deployment(trace.num_flows(), num_monitors, config,
                                   /*noc_hosted_sketches=*/false, bus.get());

    // Demonstrate the packet-level path: expand the first few intervals
    // into packets and verify the NOC assembles the same volumes.
    const auto packet_intervals =
        static_cast<std::size_t>(flags.integer("packet-intervals"));
    std::cout << "packet-level check over " << packet_intervals
              << " intervals:\n";
    for (std::size_t t = 0; t < packet_intervals; ++t) {
      const auto packets = synthesize_interval(trace, t, topo.num_routers(),
                                               PacketSizeModel{}, seed + t);
      Vector from_packets(trace.num_flows());
      for (const auto& p : packets) {
        from_packets[od_flow_id(p.origin, p.destination,
                                topo.num_routers())] +=
            static_cast<double>(p.size_bytes);
      }
      double max_rel = 0.0;
      for (std::size_t j = 0; j < trace.num_flows(); ++j) {
        const double v = trace.volumes()(t, j);
        if (v > 0.0) {
          max_rel =
              std::max(max_rel, std::abs(from_packets[j] - v) / v);
        }
      }
      std::cout << "  interval " << t << ": " << packets.size()
                << " packets, max volume deviation "
                << max_rel * 100.0 << "%\n";
    }

    std::cout << "\nstreaming " << trace.num_intervals()
              << " intervals through " << deployment.num_monitors()
              << " monitors + NOC...\n";
    std::size_t alarms = 0, hits = 0;
    for (std::size_t t = 0; t < trace.num_intervals(); ++t) {
      const Detection det =
          deployment.observe(static_cast<std::int64_t>(t), trace.row(t));
      if (det.alarm) {
        ++alarms;
        if (trace.is_anomalous(static_cast<std::int64_t>(t))) ++hits;
      }
    }

    const NetworkStats& stats = deployment.network_stats();
    TablePrinter table({"message_type", "messages", "bytes"});
    const char* names[5] = {"-", "volume-report", "sketch-request",
                            "sketch-response", "alarm"};
    for (std::size_t i = 1; i <= 4; ++i) {
      table.row({names[i], std::to_string(stats.messages_by_type[i]),
                 std::to_string(stats.bytes_by_type[i])});
    }
    table.print(std::cout);
    std::cout << "\nalarms: " << alarms << " (" << hits
              << " during injected episodes); sketch pulls: "
              << deployment.noc().sketch_pulls()
              << "; monitor summary state: "
              << deployment.monitor_memory_bytes() / 1024 << " KiB total\n";
    export_observability(flags);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
