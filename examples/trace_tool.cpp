// Trace utility: generate labelled synthetic Abilene traces to CSV, load
// them back, and print summaries — the dataset-management companion to the
// detectors (useful for sharing reproducible scenarios between runs).
//
// Examples:
//   trace_tool --mode=generate --prefix=/tmp/abilene --intervals=1152
//   trace_tool --mode=summary  --prefix=/tmp/abilene
//   trace_tool --mode=flows    --prefix=/tmp/abilene --top=10
#include <algorithm>
#include <cmath>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/spca.hpp"
#include "linalg/stats.hpp"

namespace {

using namespace spca;

void generate(const CliFlags& flags) {
  const Topology topo = abilene_topology();
  TrafficModelConfig config;
  config.num_intervals =
      static_cast<std::size_t>(flags.integer("intervals"));
  config.interval_seconds = flags.real("interval-seconds");
  config.seed = static_cast<std::uint64_t>(flags.integer("seed"));
  TraceSet trace = generate_traffic(topo, config);
  const auto anomalies =
      static_cast<std::size_t>(flags.integer("anomalies"));
  if (anomalies > 0) {
    AnomalyInjector injector(topo, config.seed ^ 0x70011ULL);
    (void)injector.inject_mixture(
        trace, anomalies, 0, static_cast<std::int64_t>(trace.num_intervals()));
  }
  trace.save(flags.str("prefix"));
  std::cout << "wrote " << flags.str("prefix") << "_volumes.csv ("
            << trace.num_intervals() << " x " << trace.num_flows()
            << ") and _events.csv (" << trace.events().size()
            << " episodes)\n";
}

void summary(const CliFlags& flags) {
  const TraceSet trace = TraceSet::load(flags.str("prefix"));
  std::cout << "intervals: " << trace.num_intervals()
            << "\nflows: " << trace.num_flows()
            << "\ninterval length: " << trace.interval_seconds()
            << " s\nepisodes: " << trace.events().size() << '\n';
  TablePrinter table({"kind", "start", "end", "flows", "magnitude"});
  for (const auto& e : trace.events()) {
    table.row({e.kind, std::to_string(e.start), std::to_string(e.end),
               std::to_string(e.flows.size()), std::to_string(e.magnitude)});
  }
  table.print(std::cout);
}

void flows(const CliFlags& flags) {
  const TraceSet trace = TraceSet::load(flags.str("prefix"));
  const Vector means = column_means(trace.volumes());
  const Vector variances = column_variances(trace.volumes());
  std::vector<std::size_t> order(trace.num_flows());
  for (std::size_t j = 0; j < order.size(); ++j) order[j] = j;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return means[a] > means[b];
  });
  const auto top = std::min<std::size_t>(
      static_cast<std::size_t>(flags.integer("top")), order.size());
  TablePrinter table({"flow", "mean_bytes", "std_bytes"});
  for (std::size_t k = 0; k < top; ++k) {
    const std::size_t j = order[k];
    table.row({trace.flow_names()[j], std::to_string(means[j]),
               std::to_string(std::sqrt(variances[j]))});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags("trace_tool: generate / summarize labelled traffic traces");
  flags.define("mode", "generate", "generate | summary | flows");
  flags.define("prefix", "/tmp/spca_trace", "file prefix for CSV output");
  flags.define("intervals", "1152", "intervals to generate");
  flags.define("interval-seconds", "300", "interval length");
  flags.define("anomalies", "12", "episodes to inject (generate mode)");
  flags.define("seed", "2008", "generator seed");
  flags.define("top", "10", "rows to print in flows mode");
  try {
    if (!flags.parse(argc, argv)) return 0;
    const std::string mode = flags.str("mode");
    if (mode == "generate") {
      generate(flags);
    } else if (mode == "summary") {
      summary(flags);
    } else if (mode == "flows") {
      flows(flags);
    } else {
      std::cerr << "unknown --mode: " << mode << '\n' << flags.usage();
      return 1;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
